"""Differential tests: batch (columnar) execution against row execution.

The batch backend is designed to be *bit-identical* with the row backend:
same answer relations, same confidences, same work metrics.  These tests pin
that down on the paper's Fig. 1 database, on a TPC-H instance, and on
Hypothesis-generated random tuple-independent databases; the scan-based
confidence evaluators (recursive, streaming, columnar) are also checked
against each other.
"""

import pytest
from hypothesis import given, settings

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.errors import PlanningError, QueryError
from repro.query.signature import has_one_scan_property
from repro.sprout import (
    EXECUTION_MODES,
    ColumnMap,
    columnar_scan_confidences,
    scan_confidences,
    sort_column_order,
    streaming_scan_confidences,
)
from repro.algebra.columnar import ColumnBatch

from helpers import assert_confidences_close, build_paper_database, paper_query
from test_properties import three_table_database, two_table_database

ALL_PLANS = ("lazy", "eager", "hybrid", "lineage")


def assert_identical_results(row_result, batch_result):
    """Batch execution must reproduce the row relation exactly (bit-identical)."""
    assert batch_result.relation.schema == row_result.relation.schema
    assert sorted(batch_result.relation.rows, key=repr) == sorted(
        row_result.relation.rows, key=repr
    )
    assert batch_result.confidences() == row_result.confidences()
    assert batch_result.answer_rows == row_result.answer_rows
    assert batch_result.rows_processed == row_result.rows_processed
    assert batch_result.scans_used == row_result.scans_used


class TestExecutionModeSelection:
    def test_engine_default_is_row(self, paper_db):
        assert SproutEngine(paper_db).execution == "row"

    def test_unknown_engine_mode_rejected(self, paper_db):
        with pytest.raises(PlanningError):
            SproutEngine(paper_db, execution="gpu")

    def test_unknown_call_mode_rejected(self, paper_engine, paper_q):
        with pytest.raises(PlanningError):
            paper_engine.evaluate(paper_q, execution="gpu")

    def test_invalid_batch_size_rejected(self, paper_db):
        with pytest.raises(PlanningError):
            SproutEngine(paper_db, batch_size=0)

    def test_engine_level_batch_default(self, paper_db, paper_q):
        engine = SproutEngine(paper_db, execution="batch")
        result = engine.evaluate(paper_q)
        assert result.execution == "batch"
        row = SproutEngine(paper_db).evaluate(paper_q)
        assert_identical_results(row, result)

    def test_modes_are_published(self):
        assert EXECUTION_MODES == ("row", "batch")


class TestPaperDatabase:
    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_all_plan_styles_bit_identical(self, paper_engine, paper_q, plan):
        row = paper_engine.evaluate(paper_q, plan=plan)
        batch = paper_engine.evaluate(paper_q, plan=plan, execution="batch")
        assert_identical_results(row, batch)

    @pytest.mark.parametrize("conf_method", ["scans", "semantics"])
    def test_conf_methods_bit_identical(self, paper_engine, paper_q, conf_method):
        row = paper_engine.evaluate(paper_q, conf_method=conf_method)
        batch = paper_engine.evaluate(paper_q, conf_method=conf_method, execution="batch")
        assert_identical_results(row, batch)

    @pytest.mark.parametrize("use_fds", [True, False])
    def test_fd_toggle_bit_identical(self, paper_engine, paper_q, use_fds):
        row = paper_engine.evaluate(paper_q, use_fds=use_fds)
        batch = paper_engine.evaluate(paper_q, use_fds=use_fds, execution="batch")
        assert_identical_results(row, batch)

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 4096])
    def test_batch_size_does_not_change_results(self, paper_db, paper_q, batch_size):
        row = SproutEngine(paper_db).evaluate(paper_q)
        batch = SproutEngine(paper_db, execution="batch", batch_size=batch_size).evaluate(paper_q)
        assert_identical_results(row, batch)

    def test_empty_answer(self, paper_engine, paper_db):
        from repro.algebra import Comparison

        query = ConjunctiveQuery(
            "empty",
            [Atom("Cust", ["ckey", "cname"])],
            projection=["cname"],
            selections=Comparison("cname", "=", "nobody"),
        )
        row = paper_engine.evaluate(query)
        batch = paper_engine.evaluate(query, execution="batch")
        assert_identical_results(row, batch)
        assert batch.distinct_tuples == 0

    def test_boolean_query(self, paper_engine):
        query = ConjunctiveQuery(
            "bool",
            [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate"])],
        )
        row = paper_engine.evaluate(query)
        batch = paper_engine.evaluate(query, execution="batch")
        assert_identical_results(row, batch)
        assert batch.boolean_confidence() == row.boolean_confidence()

    def test_disconnected_query_cross_product(self):
        # R and S share no attribute, so the answer plan contains a cross join
        # (empty join key) — a regression case where the batch join once
        # returned an empty result.
        from repro import ProbabilisticDatabase
        from repro.storage import Relation, Schema

        db = ProbabilisticDatabase("cross")
        db.add_table(
            Relation("R", Schema.of("a:int"), [(1,), (2,)]),
            probabilities=[0.5, 0.5],
            primary_key=["a"],
        )
        db.add_table(
            Relation("S", Schema.of("b:int"), [(7,)]),
            probabilities=[0.5],
            primary_key=["b"],
        )
        engine = SproutEngine(db)
        query = ConjunctiveQuery("cross", [Atom("R", ["a"]), Atom("S", ["b"])], projection=["a"])
        for plan in ALL_PLANS:
            row = engine.evaluate(query, plan=plan)
            batch = engine.evaluate(query, plan=plan, execution="batch")
            assert row.distinct_tuples == 2
            assert_identical_results(row, batch)


class TestTpchDatabase:
    """Differential check on the shared tiny TPC-H instance (SF 0.001)."""

    @pytest.mark.parametrize("key", ["1", "3", "10", "15", "16", "B17", "18", "20", "21"])
    def test_lazy_bit_identical(self, tpch_engine, key):
        from repro.tpch import tpch_query

        query = tpch_query(key).query
        row = tpch_engine.evaluate(query, plan="lazy")
        batch = tpch_engine.evaluate(query, plan="lazy", execution="batch")
        assert_identical_results(row, batch)
        assert_confidences_close(batch.confidences(), row.confidences(), 1e-9)

    @pytest.mark.parametrize("plan", ["eager", "hybrid"])
    def test_eager_hybrid_bit_identical(self, tpch_engine, plan):
        from repro.tpch import tpch_query

        for key in ("3", "16", "18"):
            query = tpch_query(key).query
            row = tpch_engine.evaluate(query, plan=plan)
            batch = tpch_engine.evaluate(query, plan=plan, execution="batch")
            assert_identical_results(row, batch)


@pytest.mark.slow
class TestTpchScaleFactor002:
    """The acceptance-criterion scale: fresh TPC-H at SF 0.002."""

    @pytest.fixture(scope="class")
    def engine_002(self):
        from repro.tpch import probabilistic_tpch

        return SproutEngine(probabilistic_tpch(scale_factor=0.002, seed=7, probability_seed=11))

    def test_figure9_queries_within_tolerance(self, engine_002):
        from repro.tpch import FIGURE9_KEYS, tpch_query

        for key in FIGURE9_KEYS:
            query = tpch_query(key).query
            row = engine_002.evaluate(query, plan="lazy")
            batch = engine_002.evaluate(query, plan="lazy", execution="batch")
            assert_confidences_close(batch.confidences(), row.confidences(), 1e-9)
            assert_identical_results(row, batch)


class TestRandomDatabases:
    """Hypothesis: random tuple-independent databases, row vs batch."""

    @given(two_table_database())
    @settings(max_examples=20, deadline=None)
    def test_two_table_row_vs_batch(self, db):
        engine = SproutEngine(db, batch_size=2)
        for projection in (["a"], ["b"], []):
            query = ConjunctiveQuery(
                f"q{'-'.join(projection)}",
                [Atom("R", ["a"]), Atom("S", ["a", "b"])],
                projection=projection,
            )
            for plan in ALL_PLANS:
                row = engine.evaluate(query, plan=plan)
                batch = engine.evaluate(query, plan=plan, execution="batch")
                assert_identical_results(row, batch)

    @given(three_table_database())
    @settings(max_examples=15, deadline=None)
    def test_three_table_row_vs_batch(self, db):
        engine = SproutEngine(db)
        for projection in ([], ["d"], ["c"]):
            query = ConjunctiveQuery(
                f"q{'-'.join(projection)}",
                [Atom("Cust", ["c"]), Atom("Ord", ["o", "c"]), Atom("Item", ["o", "d"])],
                projection=projection,
            )
            for plan in ALL_PLANS:
                row = engine.evaluate(query, plan=plan)
                batch = engine.evaluate(query, plan=plan, execution="batch")
                assert_identical_results(row, batch)


class TestScanEvaluatorsAgree:
    """OneScanState (streaming), group_probability (recursive), and the
    columnar evaluator must agree on the same sorted answer."""

    def _sorted_answer(self, engine, query):
        signature = engine.signature_for(query)
        answer, _, _ = engine._answer_relation(query, None)
        return answer.sorted_by(sort_column_order(answer.schema, signature)), signature

    def _compare_evaluators(self, engine, query):
        answer, signature = self._sorted_answer(engine, query)
        columns = ColumnMap(answer.schema)
        try:
            recursive = list(scan_confidences(answer.rows, columns, signature))
        except QueryError:
            # Signature needs pre-aggregation scans; the columnar evaluator
            # must reject it the same way.
            with pytest.raises(QueryError):
                list(columnar_scan_confidences(ColumnBatch.from_relation(answer), signature))
            return
        columnar = list(
            columnar_scan_confidences(ColumnBatch.from_relation(answer), signature)
        )
        assert columnar == recursive  # identical bags, order, and floats
        if has_one_scan_property(signature):
            try:
                streaming = list(streaming_scan_confidences(answer.rows, columns, signature))
            except QueryError:
                return  # signature shape unsupported by the streaming evaluator
            assert [data for data, _ in streaming] == [data for data, _ in recursive]
            for (_, stream_p), (_, recursive_p) in zip(streaming, recursive):
                assert stream_p == pytest.approx(recursive_p, abs=1e-12)

    def test_paper_query(self):
        engine = SproutEngine(build_paper_database())
        self._compare_evaluators(engine, paper_query())

    @given(three_table_database())
    @settings(max_examples=20, deadline=None)
    def test_random_three_table(self, db):
        engine = SproutEngine(db)
        for projection in ([], ["d"]):
            query = ConjunctiveQuery(
                "scan-cmp",
                [Atom("Cust", ["c"]), Atom("Ord", ["o", "c"]), Atom("Item", ["o", "d"])],
                projection=projection,
            )
            self._compare_evaluators(engine, query)

    @given(two_table_database())
    @settings(max_examples=20, deadline=None)
    def test_random_two_table(self, db):
        engine = SproutEngine(db)
        query = ConjunctiveQuery(
            "scan-cmp2", [Atom("R", ["a"]), Atom("S", ["a", "b"])], projection=["a"]
        )
        self._compare_evaluators(engine, query)

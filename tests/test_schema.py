"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Attribute, ColumnRole, Schema


class TestAttribute:
    def test_defaults(self):
        attribute = Attribute("ckey", "int")
        assert attribute.role is ColumnRole.DATA
        assert attribute.source is None

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "decimal")

    def test_var_column_requires_source(self):
        with pytest.raises(SchemaError):
            Attribute("V", "int", ColumnRole.VAR)

    def test_var_column_with_source(self):
        attribute = Attribute("Cust.V", "int", ColumnRole.VAR, source="Cust")
        assert attribute.source == "Cust"
        assert "var" in str(attribute)

    @pytest.mark.parametrize(
        "dtype,value,ok",
        [
            ("int", 3, True),
            ("int", "3", False),
            ("float", 3, True),
            ("float", 3.5, True),
            ("float", True, False),
            ("str", "abc", True),
            ("str", 1, False),
            ("bool", True, True),
            ("date", "1995-01-10", True),
            ("int", None, True),
        ],
    )
    def test_accepts(self, dtype, value, ok):
        assert Attribute("a", dtype).accepts(value) is ok

    def test_renamed_and_with_source(self):
        attribute = Attribute("a", "int")
        assert attribute.renamed("b").name == "b"
        assert attribute.with_source("T").source == "T"
        # original is unchanged (frozen dataclass semantics)
        assert attribute.name == "a" and attribute.source is None


class TestSchema:
    def test_of_and_lookup(self):
        schema = Schema.of("ckey:int", "cname")
        assert schema.names == ("ckey", "cname")
        assert schema["cname"].dtype == "str"
        assert schema.index_of("ckey") == 0
        assert "ckey" in schema and "missing" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a"), Attribute("a")])

    def test_unknown_attribute_raises(self):
        schema = Schema.of("a:int")
        with pytest.raises(SchemaError):
            schema.index_of("b")

    def test_project_and_drop(self):
        schema = Schema.of("a:int", "b:str", "c:float")
        assert Schema.of("c:float", "a:int") == schema.project(["c", "a"])
        assert schema.drop(["b"]).names == ("a", "c")
        with pytest.raises(SchemaError):
            schema.drop(["nope"])

    def test_concat_and_conflict(self):
        left = Schema.of("a:int")
        right = Schema.of("b:int")
        assert left.concat(right).names == ("a", "b")
        with pytest.raises(SchemaError):
            left.concat(left)

    def test_rename_and_prefixed(self):
        schema = Schema.of("a:int", "b:str")
        assert schema.rename({"a": "x"}).names == ("x", "b")
        assert schema.prefixed("T").names == ("T.a", "T.b")

    def test_validate_row(self):
        schema = Schema.of("a:int", "b:str")
        schema.validate_row((1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1,))
        with pytest.raises(SchemaError):
            schema.validate_row(("bad", "x"))

    def test_var_prob_pairs(self):
        schema = Schema(
            [
                Attribute("a", "int"),
                Attribute("T.V", "int", ColumnRole.VAR, source="T"),
                Attribute("T.P", "float", ColumnRole.PROB, source="T"),
                Attribute("S.V", "int", ColumnRole.VAR, source="S"),
                Attribute("S.P", "float", ColumnRole.PROB, source="S"),
            ]
        )
        pairs = schema.var_prob_pairs()
        assert [p.source for p in pairs] == ["T", "S"]
        assert pairs[0].var_index == 1 and pairs[0].prob_index == 2
        assert schema.sources() == ["T", "S"]
        assert schema.data_names() == ["a"]

    def test_unpaired_var_column_rejected(self):
        schema = Schema([Attribute("T.V", "int", ColumnRole.VAR, source="T")])
        with pytest.raises(SchemaError):
            schema.var_prob_pairs()

    def test_duplicate_var_column_rejected(self):
        schema = Schema(
            [
                Attribute("T.V", "int", ColumnRole.VAR, source="T"),
                Attribute("T.V2", "int", ColumnRole.VAR, source="T"),
                Attribute("T.P", "float", ColumnRole.PROB, source="T"),
            ]
        )
        with pytest.raises(SchemaError):
            schema.var_prob_pairs()

    def test_equality_and_hash(self):
        assert Schema.of("a:int") == Schema.of("a:int")
        assert Schema.of("a:int") != Schema.of("a:str")
        assert hash(Schema.of("a:int")) == hash(Schema.of("a:int"))

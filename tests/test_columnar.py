"""Unit tests of the columnar batch operators against their row twins.

Every batch operator must produce exactly the relation (schema, rows, order)
its iterator-model counterpart produces — the engine relies on this to make
``execution="batch"`` bit-identical with ``execution="row"``.
"""

import pytest

from repro.algebra import (
    AggregateSpec,
    AttributeComparison,
    BatchGroupByOp,
    BatchHashJoinOp,
    BatchMaterializedOp,
    BatchProjectOp,
    BatchScanOp,
    BatchSelectOp,
    BatchSortOp,
    ColumnBatch,
    Comparison,
    Conjunction,
    Disjunction,
    GroupByOp,
    HashJoinOp,
    MaterializedOp,
    Negation,
    ProjectOp,
    ScanOp,
    SelectOp,
    TruePredicate,
    compile_mask,
    group_by_columns,
    sort_batch,
)
from repro.errors import SchemaError
from repro.storage import Relation, Schema


@pytest.fixture
def people():
    return Relation(
        "people",
        Schema.of("pid:int", "name:str", "age:int", "city:str"),
        [
            (1, "ann", 34, "oslo"),
            (2, "bob", 27, "bergen"),
            (3, "cec", None, "oslo"),
            (4, "dan", 41, None),
            (5, "eve", 27, "oslo"),
        ],
    )


@pytest.fixture
def visits():
    return Relation(
        "visits",
        Schema.of("pid:int", "place:str"),
        [
            (1, "museum"),
            (1, "park"),
            (2, "park"),
            (5, "museum"),
            (None, "harbor"),
            (6, "castle"),
        ],
    )


def assert_same_output(batch_op, row_op, name="out"):
    got = batch_op.to_relation(name)
    want = row_op.to_relation(name)
    assert got.schema == want.schema
    assert got.rows == want.rows  # identical rows in identical order


class TestColumnBatch:
    def test_roundtrip(self, people):
        batch = ColumnBatch.from_relation(people)
        assert len(batch) == len(people)
        assert list(batch.rows()) == people.rows
        assert batch.to_relation("copy").rows == people.rows

    def test_column_access(self, people):
        batch = ColumnBatch.from_relation(people)
        assert batch.column("name") == ["ann", "bob", "cec", "dan", "eve"]

    def test_take(self, people):
        batch = ColumnBatch.from_relation(people)
        taken = batch.take([4, 0])
        assert list(taken.rows()) == [people.rows[4], people.rows[0]]

    def test_concat(self, people):
        batch = ColumnBatch.from_relation(people)
        merged = ColumnBatch.concat(people.schema, [batch, batch])
        assert len(merged) == 2 * len(people)
        assert list(merged.rows()) == people.rows + people.rows

    def test_arity_mismatch_raises(self, people):
        with pytest.raises(SchemaError):
            ColumnBatch(people.schema, [[1, 2]])

    def test_ragged_columns_raise(self):
        schema = Schema.of("a:int", "b:int")
        with pytest.raises(SchemaError):
            ColumnBatch(schema, [[1, 2], [3]])
        with pytest.raises(SchemaError):
            Relation.from_columns("r", schema, [[1, 2], [3]])

    def test_zero_column_batch_keeps_length(self):
        batch = ColumnBatch(Schema([]), [], length=3)
        assert len(batch) == 3
        assert list(batch.rows()) == [(), (), ()]


class TestBatchScan:
    def test_emits_all_rows_in_order(self, people):
        op = BatchScanOp(people, batch_size=2)
        batches = list(op.batches())
        assert [len(b) for b in batches] == [2, 2, 1]
        assert op.rows_out == 5
        assert_same_output(BatchScanOp(people, batch_size=2), ScanOp(people))

    def test_materialized_from_batch(self, people):
        batch = ColumnBatch.from_relation(people)
        assert BatchMaterializedOp(batch).to_relation().rows == people.rows


class TestBatchSelect:
    @pytest.mark.parametrize(
        "predicate",
        [
            TruePredicate(),
            Comparison("age", ">", 30),
            Comparison("age", "=", 27),
            Comparison("city", "=", "oslo"),
            Comparison("age", "!=", 27),
            Conjunction([Comparison("age", ">", 20), Comparison("city", "=", "oslo")]),
            Disjunction([Comparison("age", ">", 40), Comparison("city", "=", "bergen")]),
            Negation(Comparison("city", "=", "oslo")),
            AttributeComparison("pid", "<", "age"),
        ],
    )
    def test_matches_row_select(self, people, predicate):
        assert_same_output(
            BatchSelectOp(BatchScanOp(people, batch_size=2), predicate),
            SelectOp(ScanOp(people), predicate),
        )

    def test_mask_handles_none_like_bind(self, people):
        # None never satisfies a comparison, matching Predicate.bind.
        mask = compile_mask(Comparison("age", ">", 0), people.schema)
        batch = ColumnBatch.from_relation(people)
        assert mask(batch) == [True, True, False, True, True]


class TestBatchProject:
    def test_matches_row_project(self, people):
        names = ["city", "pid"]
        assert_same_output(
            BatchProjectOp(BatchScanOp(people, batch_size=2), names),
            ProjectOp(ScanOp(people), names),
        )


class TestBatchHashJoin:
    def test_matches_row_hash_join(self, people, visits):
        assert_same_output(
            BatchHashJoinOp(BatchScanOp(people, batch_size=2), BatchScanOp(visits, batch_size=4)),
            HashJoinOp(ScanOp(people), ScanOp(visits)),
        )

    def test_multi_attribute_key(self, people):
        other = Relation(
            "other",
            Schema.of("pid:int", "age:int", "tag:str"),
            [(1, 34, "x"), (2, 27, "y"), (2, 99, "z"), (None, 27, "n")],
        )
        assert_same_output(
            BatchHashJoinOp(BatchScanOp(people), BatchScanOp(other)),
            HashJoinOp(ScanOp(people), ScanOp(other)),
        )

    def test_none_keys_do_not_match(self, people, visits):
        joined = BatchHashJoinOp(BatchScanOp(people), BatchScanOp(visits)).to_relation()
        assert all(row[0] is not None for row in joined.rows)
        assert "harbor" not in {row[-1] for row in joined.rows}

    def test_explicit_on(self, people, visits):
        assert_same_output(
            BatchHashJoinOp(BatchScanOp(people), BatchScanOp(visits), on=["pid"]),
            HashJoinOp(ScanOp(people), ScanOp(visits), on=["pid"]),
        )

    def test_cross_join_matches_row_join(self, people):
        # No shared attributes -> empty join key -> full cross product,
        # exactly like the row HashJoinOp.
        other = Relation("tags", Schema.of("tag:str"), [("x",), ("y",)])
        batch = BatchHashJoinOp(BatchScanOp(people, batch_size=2), BatchScanOp(other))
        row = HashJoinOp(ScanOp(people), ScanOp(other))
        assert_same_output(batch, row)
        assert len(batch.to_relation()) == len(people) * len(other)


class TestBatchGroupBy:
    def test_matches_row_group_by(self, people):
        aggregates = [
            AggregateSpec("count", "pid", "n"),
            AggregateSpec("min", "name", "first_name"),
            AggregateSpec("sum", "pid", "pid_sum"),
        ]
        assert_same_output(
            BatchGroupByOp(BatchScanOp(people, batch_size=2), ["city"], aggregates),
            GroupByOp(ScanOp(people), ["city"], aggregates),
        )

    def test_empty_group_by_single_group(self, people):
        aggregates = [AggregateSpec("count", "pid", "n")]
        assert_same_output(
            BatchGroupByOp(BatchScanOp(people), [], aggregates),
            GroupByOp(ScanOp(people), [], aggregates),
        )

    def test_group_by_columns_function(self, people):
        batch = ColumnBatch.from_relation(people)
        out = group_by_columns(batch, ["age"], [AggregateSpec("count", "pid", "n")])
        want = GroupByOp(MaterializedOp(people), ["age"], [AggregateSpec("count", "pid", "n")])
        assert list(out.rows()) == want.to_relation().rows


class TestBatchSort:
    def test_matches_relation_sort(self, people):
        by = ["city", "age"]
        got = BatchSortOp(BatchScanOp(people, batch_size=2), by).to_relation()
        assert got.rows == people.sorted_by(by).rows

    def test_sort_batch_is_stable(self, people):
        batch = ColumnBatch.from_relation(people)
        out = sort_batch(batch, ["age"])
        ages = out.column("age")
        # None sorts first; ties keep original order (bob before eve).
        assert ages == [None, 27, 27, 34, 41]
        assert out.column("name") == ["cec", "bob", "eve", "ann", "dan"]

    def test_sort_empty_keys_returns_input(self, people):
        batch = ColumnBatch.from_relation(people)
        assert sort_batch(batch, []) is batch


class TestWorkMetric:
    def test_total_rows_processed_matches_row_plan(self, people, visits):
        predicate = Comparison("age", ">", 20)
        row_plan = HashJoinOp(SelectOp(ScanOp(people), predicate), ScanOp(visits))
        batch_plan = BatchHashJoinOp(
            BatchSelectOp(BatchScanOp(people, batch_size=2), predicate),
            BatchScanOp(visits, batch_size=3),
        )
        row_plan.to_relation()
        batch_plan.to_relation()
        assert batch_plan.total_rows_processed() == row_plan.total_rows_processed()

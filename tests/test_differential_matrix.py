"""Cross-plan differential matrix: every engine configuration, one truth.

One parametrized harness evaluates a small query corpus (safe and unsafe,
Boolean and projected, with and without selections) across the full
configuration matrix — plan style × row/batch execution × exact/approx
confidence × scan-based/semantics operator — and asserts that every
configuration agrees with brute-force possible-world enumeration (exactly for
exact configurations, within the epsilon budget for approximate ones) and
therefore with every other configuration.
"""

import pytest

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.prob import confidences_by_enumeration
from repro.sprout import evaluate_deterministic
from repro.storage import Relation, Schema

TOLERANCE = 1e-9
EPSILON = 0.01


# ---------------------------------------------------------------------------
# corpus: (database builder, query) pairs small enough to enumerate
# ---------------------------------------------------------------------------


def _safe_db():
    db = ProbabilisticDatabase("matrix-safe")
    cust = Relation(
        "Cust", Schema.of("ckey:int", "cname:str"), [(1, "Joe"), (2, "Dan"), (3, "Li")]
    )
    ord_ = Relation(
        "Ord",
        Schema.of("okey:int", "ckey:int", "odate:str"),
        [(1, 1, "1995"), (2, 1, "1996"), (3, 2, "1994"), (4, 3, "1995"), (5, 3, "1993")],
    )
    db.add_table(cust, probabilities=[0.6, 0.35, 0.8], primary_key=["ckey"])
    db.add_table(ord_, probabilities=[0.5, 0.25, 0.7, 0.45, 0.9], primary_key=["okey"])
    return db


def _safe_proj_query():
    return ConjunctiveQuery(
        "safe_proj",
        [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate"])],
        projection=["odate"],
    )


def _safe_selection_query():
    return ConjunctiveQuery(
        "safe_sel",
        [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate"])],
        projection=["cname"],
        selections=conjunction_of([Comparison("odate", "=", "1995")]),
    )


def _safe_bool_query():
    return ConjunctiveQuery(
        "safe_bool",
        [Atom("Cust", ["ckey", "cname"]), Atom("Ord", ["okey", "ckey", "odate"])],
        projection=[],
    )


def _unsafe_db():
    db = ProbabilisticDatabase("matrix-unsafe")
    db.add_table(
        Relation("R", Schema.of("a:int", "x:int"), [(0, 0), (0, 1), (1, 1), (2, 0)]),
        probabilities=[0.4, 0.7, 0.55, 0.3],
    )
    db.add_table(
        Relation("S", Schema.of("x:int", "y:int"), [(0, 0), (0, 1), (1, 1), (1, 0)]),
        probabilities=[0.5, 0.2, 0.8, 0.35],
    )
    db.add_table(
        Relation("T", Schema.of("y:int"), [(0,), (1,)]), probabilities=[0.65, 0.45]
    )
    return db


def _unsafe_bool_query():
    return ConjunctiveQuery(
        "unsafe_bool",
        [Atom("R", ["a", "x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
        projection=[],
    )


def _unsafe_proj_query():
    return ConjunctiveQuery(
        "unsafe_proj",
        [Atom("R", ["a", "x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
        projection=["a"],
    )


def _single_table_db():
    db = ProbabilisticDatabase("matrix-single")
    db.add_table(
        Relation(
            "Obs",
            Schema.of("sensor:str", "value:int"),
            [("s1", 1), ("s1", 2), ("s2", 1), ("s2", 3), ("s3", 2)],
        ),
        probabilities=[0.3, 0.6, 0.55, 0.2, 0.85],
    )
    return db


def _single_table_query():
    # Projecting away `value` makes each sensor's confidence a disjunction.
    return ConjunctiveQuery(
        "single", [Atom("Obs", ["sensor", "value"])], projection=["sensor"]
    )


CORPUS = {
    "safe_proj": (_safe_db, _safe_proj_query),
    "safe_sel": (_safe_db, _safe_selection_query),
    "safe_bool": (_safe_db, _safe_bool_query),
    "unsafe_bool": (_unsafe_db, _unsafe_bool_query),
    "unsafe_proj": (_unsafe_db, _unsafe_proj_query),
    "single": (_single_table_db, _single_table_query),
}

#: (plan, execution, confidence, conf_method) — the exact axis runs every plan
#: style under both backends; the approx axis collapses to the d-tree route
#: (any plan × approx takes it), so lazy/dtree cover it; the literal GRP
#: semantics is exercised on the lazy plan under both backends.
CONFIGURATIONS = [
    *(
        (plan, execution, "exact", "scans")
        for plan in ("lazy", "eager", "hybrid", "lineage", "dtree")
        for execution in ("row", "batch")
    ),
    *(
        (plan, execution, "approx", "scans")
        for plan in ("lazy", "dtree")
        for execution in ("row", "batch")
    ),
    ("lazy", "row", "exact", "semantics"),
    ("lazy", "batch", "exact", "semantics"),
]

_truth_cache = {}


def _truth(case):
    if case not in _truth_cache:
        build_db, make_query = CORPUS[case]
        db = build_db()
        _truth_cache[case] = confidences_by_enumeration(
            db, lambda instance: evaluate_deterministic(make_query(), instance)
        )
    return _truth_cache[case]


@pytest.mark.parametrize("case", sorted(CORPUS))
@pytest.mark.parametrize(
    "plan,execution,confidence,conf_method",
    CONFIGURATIONS,
    ids=["-".join(c) for c in CONFIGURATIONS],
)
def test_configuration_agrees_with_enumeration(case, plan, execution, confidence, conf_method):
    build_db, make_query = CORPUS[case]
    engine = SproutEngine(build_db(), epsilon=EPSILON)
    result = engine.evaluate(
        make_query(),
        plan=plan,
        execution=execution,
        confidence=confidence,
        conf_method=conf_method,
    )
    truth = _truth(case)
    confidences = result.confidences()
    assert set(confidences) == set(truth), (
        f"{case}: answer tuples differ under {plan}/{execution}/{confidence}"
    )
    for data, expected in truth.items():
        actual = confidences[data]
        if confidence == "exact":
            assert actual == pytest.approx(expected, abs=TOLERANCE), (
                f"{case}: confidence of {data} differs under "
                f"{plan}/{execution}/{conf_method}"
            )
        else:
            assert abs(actual - expected) <= EPSILON + TOLERANCE
            lower, upper = result.bounds[data]
            assert lower - TOLERANCE <= expected <= upper + TOLERANCE


#: The shared-lineage axis runs every plan style on the row backend for the
#: exact mode, the d-tree-routed plans for the approx mode, and the columnar
#: backend on the d-tree plan — the configurations whose serial scheduling
#: the ``shared_lineage`` switch could conceivably touch.
SHARED_AXIS = [
    *((plan, "row", "exact") for plan in ("lazy", "eager", "hybrid", "lineage", "dtree")),
    ("dtree", "batch", "exact"),
    *((plan, "row", "approx") for plan in ("lazy", "dtree")),
    ("dtree", "batch", "approx"),
]


@pytest.mark.parametrize("case", sorted(CORPUS))
@pytest.mark.parametrize(
    "plan,execution,confidence", SHARED_AXIS, ids=["-".join(c) for c in SHARED_AXIS]
)
def test_shared_lineage_axis_is_bit_identical(case, plan, execution, confidence):
    """``shared_lineage`` on vs. off: plain evaluation must not move a bit.

    Sharing compiles common subformulas once across tuples, but the
    decomposition arithmetic is identical — so every confidence, bound, and
    answer row must be float-for-float the same under both engines.
    """
    build_db, make_query = CORPUS[case]
    results = {}
    for shared in (False, True):
        engine = SproutEngine(build_db(), epsilon=EPSILON, shared_lineage=shared)
        result = engine.evaluate(
            make_query(), plan=plan, execution=execution, confidence=confidence
        )
        results[shared] = result
    assert results[True].confidences() == results[False].confidences()
    assert results[True].bounds == results[False].bounds
    assert list(results[True].relation.rows) == list(results[False].relation.rows)


@pytest.mark.parametrize("case", sorted(CORPUS))
@pytest.mark.parametrize("confidence", ["exact", "approx"])
def test_topk_and_threshold_shared_axis(case, confidence):
    """Top-k/threshold under ``shared_lineage`` on vs. off: same decided sets,
    and (in exact mode) bit-identical selected confidences.

    The two modes refine along different trajectories, so non-selected
    bounds and step counts may differ — but both stop only on *proven*
    decisions, which pins the answer sets to each other."""
    build_db, make_query = CORPUS[case]
    truth = _truth(case)
    tau = sorted(truth.values())[len(truth) // 2] if truth else 0.5
    top_confidences = {}
    threshold_sets = {}
    for shared in (False, True):
        engine = SproutEngine(build_db(), shared_lineage=shared)
        top = engine.evaluate_topk(make_query(), k=2, plan="dtree", confidence=confidence)
        assert top.decided
        top_confidences[shared] = top.confidences()
        threshold = engine.evaluate_threshold(
            make_query(), tau=tau, plan="dtree", confidence=confidence
        )
        assert threshold.decided
        threshold_sets[shared] = frozenset(threshold.confidences())
    assert set(top_confidences[True]) == set(top_confidences[False])
    assert threshold_sets[True] == threshold_sets[False]
    if confidence == "exact":
        # Exact mode refines the winners to closure: the values themselves
        # must agree to the bit, not just the sets.
        assert top_confidences[True] == top_confidences[False]


@pytest.mark.parametrize("case", sorted(CORPUS))
@pytest.mark.parametrize("confidence", ["exact", "approx"])
def test_vectorized_axis_is_bit_identical(case, confidence):
    """Vectorized vs. scalar bound propagation: nothing may move a bit.

    The NumPy kernels replicate the scalar combine-bounds arithmetic
    operation for operation (same accumulation order, same float64 ops), so
    confidences, bounds, decided sets, *and step counts* must be identical —
    the backend is a throughput choice, never a semantic one.  Without NumPy
    installed ``vectorize=True`` degrades to the scalar path and the
    comparison is trivially satisfied (that leg still pins the fallback).
    """
    build_db, make_query = CORPUS[case]
    truth = _truth(case)
    tau = sorted(truth.values())[len(truth) // 2] if truth else 0.5
    fingerprints = {}
    for vectorize in (False, True):
        engine = SproutEngine(build_db(), epsilon=EPSILON, vectorize=vectorize)
        plain = engine.evaluate(make_query(), plan="dtree", confidence=confidence)
        top = engine.evaluate_topk(
            make_query(), k=2, plan="dtree", confidence=confidence
        )
        threshold = engine.evaluate_threshold(
            make_query(), tau=tau, plan="dtree", confidence=confidence
        )
        fingerprints[vectorize] = (
            sorted(plain.confidences().items()),
            sorted(plain.bounds.items()),
            plain.refine_steps,
            sorted(top.confidences().items()),
            sorted(top.bounds.items()),
            top.decided,
            top.refine_steps,
            sorted(threshold.confidences().items()),
            sorted(threshold.bounds.items()),
            threshold.decided,
            threshold.refine_steps,
        )
    assert fingerprints[True] == fingerprints[False]


@pytest.mark.parametrize("case", sorted(CORPUS))
@pytest.mark.parametrize("confidence", ["exact", "approx"])
def test_lane_axis_is_bit_identical(case, confidence):
    """Multi-lane vs. serial refinement: nothing may move a bit.

    The round plan is frozen before any lane runs and commits land in plan
    order, so data-parallel refinement (``refine_lanes=2``) is — like the
    vectorize axis above — a throughput choice, never a semantic one.  The
    deep per-round interleaving coverage lives in ``tests/test_lanes.py``;
    this leg keeps the lane axis inside the differential matrix so a future
    axis interaction (lanes × confidence × query shape) cannot regress
    unnoticed.
    """
    build_db, make_query = CORPUS[case]
    truth = _truth(case)
    tau = sorted(truth.values())[len(truth) // 2] if truth else 0.5
    fingerprints = {}
    for lanes in (0, 2):
        engine = SproutEngine(build_db(), epsilon=EPSILON, refine_lanes=lanes)
        plain = engine.evaluate(make_query(), plan="dtree", confidence=confidence)
        top = engine.evaluate_topk(
            make_query(), k=2, plan="dtree", confidence=confidence
        )
        threshold = engine.evaluate_threshold(
            make_query(), tau=tau, plan="dtree", confidence=confidence
        )
        fingerprints[lanes] = (
            sorted(plain.confidences().items()),
            sorted(plain.bounds.items()),
            plain.refine_steps,
            sorted(top.confidences().items()),
            sorted(top.bounds.items()),
            top.decided,
            top.refine_steps,
            sorted(threshold.confidences().items()),
            sorted(threshold.bounds.items()),
            threshold.decided,
            threshold.refine_steps,
            engine.dtree_cache.store.table.bounds_fingerprint(),
        )
        engine.close()
    assert fingerprints[2] == fingerprints[0]


@pytest.mark.parametrize("case", sorted(CORPUS))
def test_topk_and_threshold_agree_across_backends(case):
    """The bounded APIs return identical answer sets under row and batch."""
    build_db, make_query = CORPUS[case]
    truth = _truth(case)
    engine = SproutEngine(build_db())
    for confidence in ("exact", "approx"):
        selections = []
        for execution in ("row", "batch"):
            top = engine.evaluate_topk(
                make_query(), k=2, execution=execution, confidence=confidence
            )
            assert top.decided
            selections.append(frozenset(top.confidences()))
        assert selections[0] == selections[1]
    median = sorted(truth.values())[len(truth) // 2] if truth else 0.5
    row = engine.evaluate_threshold(make_query(), tau=median)
    batch = engine.evaluate_threshold(make_query(), tau=median, execution="batch")
    assert set(row.confidences()) == set(batch.confidences())

"""The bound-driven top-k/threshold subsystem.

Unit tests pin the scheduler's decision rules on hand-built candidates;
engine-level tests check both routes (exact operator short-circuit for
tractable queries, multi-tuple d-tree refinement otherwise) against
brute-force world enumeration; Hypothesis properties assert that on random
small tuple-independent databases ``evaluate_topk(k)`` returns exactly the k
most probable tuples and ``evaluate_threshold(tau)`` partitions correctly,
for every k and a spread of τ.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Atom, ConjunctiveQuery, PlanningError, ProbabilisticDatabase, SproutEngine
from repro.prob import DTree, confidences_by_enumeration
from repro.prob.formulas import DNF
from repro.sprout import RefinementScheduler, TupleCandidate, evaluate_deterministic
from repro.storage import Relation, Schema

TOLERANCE = 1e-9


def chain_query(projection=("a",)):
    """q(a) :- R(a, x), S(x, y), T(y): unsafe (x and y cross atoms)."""
    return ConjunctiveQuery(
        "chain",
        [Atom("R", ["a", "x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
        projection=list(projection),
    )


def build_chain_database(r_rows, r_probs, s_rows, s_probs, t_probs):
    db = ProbabilisticDatabase("chain-db")
    db.add_table(Relation("R", Schema.of("a:int", "x:int"), r_rows), probabilities=r_probs)
    db.add_table(Relation("S", Schema.of("x:int", "y:int"), s_rows), probabilities=s_probs)
    t_rows = [(i,) for i in range(len(t_probs))]
    db.add_table(Relation("T", Schema.of("y:int"), t_rows), probabilities=t_probs)
    return db


@pytest.fixture
def chain_db():
    return build_chain_database(
        [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 1)],
        [0.8, 0.3, 0.6, 0.4, 0.5, 0.7, 0.25],
        [(0, 0), (0, 1), (1, 1), (2, 0), (2, 1), (1, 0)],
        [0.45, 0.85, 0.3, 0.6, 0.2, 0.75],
        [0.9, 0.35],
    )


def enumerate_truth(db, query):
    return confidences_by_enumeration(
        db, lambda instance: evaluate_deterministic(query, instance)
    )


def assert_valid_topk(selected_confidences, truth, k):
    """``selected`` must be *a* valid top-k set of ``truth`` (tie-tolerant)."""
    assert len(selected_confidences) == min(k, len(truth))
    if not selected_confidences:
        return
    rest = sorted(
        (conf for data, conf in truth.items() if data not in selected_confidences),
        reverse=True,
    )
    weakest_in = min(truth[data] for data in selected_confidences)
    if rest:
        assert rest[0] <= weakest_in + TOLERANCE, (
            f"excluded tuple with confidence {rest[0]} beats selected {weakest_in}"
        )


class TestScheduler:
    def test_candidate_needs_tree_xor_value(self):
        with pytest.raises(PlanningError):
            TupleCandidate((1,))
        with pytest.raises(PlanningError):
            TupleCandidate((1,), tree=DTree(DNF([[0]]), {0: 0.5}), value=0.5)

    def test_exact_candidates_decide_without_refinement(self):
        candidates = [
            TupleCandidate((i,), value=p) for i, p in enumerate([0.9, 0.5, 0.1])
        ]
        outcome = RefinementScheduler(candidates).run_topk(2)
        assert outcome.decided
        assert outcome.steps == 0
        assert [c.data for c in outcome.selected] == [(0,), (1,)]

    def test_k_at_least_population_selects_everything(self):
        candidates = [TupleCandidate((i,), value=0.5) for i in range(3)]
        outcome = RefinementScheduler(candidates).run_topk(5)
        assert outcome.decided
        assert len(outcome.selected) == 3

    def test_threshold_partitions_exact_candidates(self):
        candidates = [
            TupleCandidate((i,), value=p) for i, p in enumerate([0.9, 0.5, 0.1])
        ]
        outcome = RefinementScheduler(candidates).run_threshold(0.5)
        assert outcome.decided
        assert {c.data for c in outcome.selected} == {(0,), (1,)}  # conf >= tau is in

    def test_budget_exhaustion_reports_undecided(self):
        # Two path-shaped DNFs (adjacent clauses share a variable): neither
        # decomposes at construction, so their identical brackets overlap.
        clauses_a = [[i, i + 1] for i in range(0, 8)]
        clauses_b = [[i, i + 1] for i in range(10, 18)]
        probabilities = {i: 0.5 for i in range(20)}
        candidates = [
            TupleCandidate(("a",), tree=DTree(DNF(clauses_a), probabilities)),
            TupleCandidate(("b",), tree=DTree(DNF(clauses_b), probabilities)),
        ]
        outcome = RefinementScheduler(candidates, chunk=1, max_steps=0).run_topk(1)
        assert not outcome.decided
        assert outcome.steps == 0
        assert len(outcome.selected) == 1

    def test_validation(self):
        candidate = [TupleCandidate((0,), value=0.5)]
        with pytest.raises(PlanningError):
            RefinementScheduler(candidate, chunk=0)
        with pytest.raises(PlanningError):
            RefinementScheduler(candidate, max_steps=-1)
        with pytest.raises(PlanningError):
            RefinementScheduler(candidate).run_topk(0)
        with pytest.raises(PlanningError):
            RefinementScheduler(candidate).run_threshold(1.5)


class TestEngineTopK:
    def test_unsafe_query_routes_to_scheduler(self, chain_db):
        engine = SproutEngine(chain_db)
        query = chain_query()
        assert not engine.is_tractable(query)
        truth = enumerate_truth(chain_db, query)
        result = engine.evaluate_topk(query, k=2)
        assert result.plan_style == "dtree"
        assert result.decided
        assert result.k == 2 and result.tau is None
        selected = result.confidences()
        assert_valid_topk(selected, truth, 2)
        # Exact mode refines the selected tuples all the way.
        for data, confidence in selected.items():
            assert confidence == pytest.approx(truth[data], abs=TOLERANCE)
        # Brackets cover every candidate, not just the winners.
        assert set(result.bounds) == set(truth)
        for data, (lower, upper) in result.bounds.items():
            assert lower - TOLERANCE <= truth[data] <= upper + TOLERANCE

    def test_result_is_sorted_most_probable_first(self, chain_db):
        engine = SproutEngine(chain_db)
        result = engine.evaluate_topk(chain_query(), k=3)
        confidences = [row[-1] for row in result.relation]
        assert confidences == sorted(confidences, reverse=True)

    def test_batch_execution_matches_row(self, chain_db):
        engine = SproutEngine(chain_db)
        row = engine.evaluate_topk(chain_query(), k=2)
        batch = engine.evaluate_topk(chain_query(), k=2, execution="batch")
        assert batch.execution == "batch"
        assert set(batch.confidences()) == set(row.confidences())

    def test_threshold_partition(self, chain_db):
        engine = SproutEngine(chain_db)
        query = chain_query()
        truth = enumerate_truth(chain_db, query)
        tau = 0.35
        result = engine.evaluate_threshold(query, tau=tau)
        assert result.decided
        assert result.tau == tau and result.k is None
        expected = {data for data, conf in truth.items() if conf >= tau - TOLERANCE}
        ambiguous = {
            data for data, conf in truth.items() if abs(conf - tau) <= TOLERANCE
        }
        assert expected - ambiguous <= set(result.confidences()) <= expected | ambiguous

    def test_threshold_bounds_clear_tau(self, chain_db):
        engine = SproutEngine(chain_db)
        tau = 0.35
        result = engine.evaluate_threshold(chain_query(), tau=tau)
        selected = set(result.confidences())
        for data, (lower, upper) in result.bounds.items():
            if data in selected:
                assert lower >= tau - TOLERANCE
            else:
                assert upper < tau + TOLERANCE

    def test_safe_query_short_circuits(self, chain_db):
        engine = SproutEngine(chain_db)
        safe = ConjunctiveQuery(
            "safe", [Atom("R", ["a", "x"])], projection=["a"]
        )
        truth = enumerate_truth(chain_db, safe)
        result = engine.evaluate_topk(safe, k=2)
        assert result.plan_style == "lazy"
        assert result.decided
        assert result.refine_steps == 0
        assert_valid_topk(result.confidences(), truth, 2)
        threshold = engine.evaluate_threshold(safe, tau=0.5, plan="eager")
        assert threshold.plan_style == "eager"
        expected = {data for data, conf in truth.items() if conf >= 0.5}
        assert set(threshold.confidences()) == expected

    def test_forced_dtree_plan_matches_short_circuit(self, chain_db):
        engine = SproutEngine(chain_db)
        safe = ConjunctiveQuery(
            "safe2", [Atom("R", ["a", "x"]), Atom("S", ["x", "y"])], projection=["a"]
        )
        assert engine.is_tractable(safe)
        fast = engine.evaluate_topk(safe, k=2)
        scheduled = engine.evaluate_topk(safe, k=2, plan="dtree")
        assert fast.plan_style != "dtree" and scheduled.plan_style == "dtree"
        assert set(fast.confidences()) == set(scheduled.confidences())

    def test_exact_ties_resolve_identically_on_every_route(self):
        # Three identically probable candidates fight for k=2: the winner of
        # the tie must not depend on answer-row order (row vs batch) or on
        # the route (scheduler vs exact short-circuit) — all tie-break on the
        # data tuple's repr.
        db = ProbabilisticDatabase("ties")
        db.add_table(
            Relation("Obs", Schema.of("sensor:str"), [("a",), ("b",), ("c",)]),
            probabilities=[0.5, 0.5, 0.5],
        )
        query = ConjunctiveQuery("tied", [Atom("Obs", ["sensor"])], projection=["sensor"])
        engine = SproutEngine(db)
        selections = {
            (plan, execution): frozenset(
                engine.evaluate_topk(
                    query, k=2, plan=plan, execution=execution
                ).confidences()
            )
            for plan in ("lazy", "dtree")
            for execution in ("row", "batch")
        }
        assert len(set(selections.values())) == 1

    def test_approx_mode_reports_midpoints_within_bounds(self, chain_db):
        engine = SproutEngine(chain_db)
        result = engine.evaluate_topk(chain_query(), k=2, confidence="approx")
        assert result.decided
        truth = enumerate_truth(chain_db, chain_query())
        assert_valid_topk(result.confidences(), truth, 2)
        for data, confidence in result.confidences().items():
            lower, upper = result.bounds[data]
            assert lower - TOLERANCE <= confidence <= upper + TOLERANCE

    def test_budget_exhaustion_is_reported_not_raised(self, chain_db):
        engine = SproutEngine(chain_db)
        result = engine.evaluate_topk(
            chain_query(), k=1, confidence="approx", max_steps=0
        )
        assert isinstance(result.decided, bool)
        assert result.refine_steps == 0

    def test_shared_cache_reuses_refinement(self, chain_db):
        # The shared d-tree cache is an in-process feature: pin workers=0 so
        # the test keeps exercising it under the REPRO_WORKERS CI leg (the
        # parallel scheduler trades this cross-call reuse for determinism).
        engine = SproutEngine(chain_db, workers=0)
        first = engine.evaluate_topk(chain_query(), k=2)
        assert engine.dtree_cache.misses > 0
        hits_before = engine.dtree_cache.hits
        second = engine.evaluate_topk(chain_query(), k=2)
        assert engine.dtree_cache.hits > hits_before
        # Trees arrive already refined: the repeat decision costs no new steps.
        assert second.refine_steps == 0
        assert set(second.confidences()) == set(first.confidences())

    def test_validation(self, chain_db):
        engine = SproutEngine(chain_db)
        with pytest.raises(PlanningError):
            engine.evaluate_topk(chain_query(), k=0)
        with pytest.raises(PlanningError):
            engine.evaluate_threshold(chain_query(), tau=-0.1)
        with pytest.raises(PlanningError):
            engine.evaluate_threshold(chain_query(), tau=1.5)
        with pytest.raises(PlanningError):
            engine.evaluate_topk(chain_query(), k=1, execution="warp")


@st.composite
def chain_database(draw):
    """A random small R(a,x) ⋈ S(x,y) ⋈ T(y) instance (≤ 13 variables)."""
    probability = st.floats(min_value=0.05, max_value=0.95)
    r_rows = sorted(
        {
            (draw(st.integers(0, 2)), draw(st.integers(0, 1)))
            for _ in range(draw(st.integers(1, 5)))
        }
    )
    s_rows = sorted(
        {
            (draw(st.integers(0, 1)), draw(st.integers(0, 1)))
            for _ in range(draw(st.integers(1, 4)))
        }
    )
    t_size = draw(st.integers(1, 2))
    return build_chain_database(
        r_rows,
        [draw(probability) for _ in r_rows],
        s_rows,
        [draw(probability) for _ in s_rows],
        [draw(probability) for _ in range(t_size)],
    )


class TestTopKProperties:
    @given(chain_database(), st.integers(1, 4), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_topk_matches_brute_force(self, db, k, approx):
        engine = SproutEngine(db)
        query = chain_query()
        truth = enumerate_truth(db, query)
        result = engine.evaluate_topk(
            query, k=k, confidence="approx" if approx else "exact"
        )
        assert result.decided
        assert_valid_topk(result.confidences(), truth, k)
        for data, (lower, upper) in result.bounds.items():
            assert lower - TOLERANCE <= truth[data] <= upper + TOLERANCE

    @given(chain_database(), st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=25, deadline=None)
    def test_threshold_matches_brute_force(self, db, tau):
        engine = SproutEngine(db)
        query = chain_query()
        truth = enumerate_truth(db, query)
        result = engine.evaluate_threshold(query, tau=tau)
        assert result.decided
        selected = set(result.confidences())
        for data, confidence in truth.items():
            if confidence >= tau + TOLERANCE:
                assert data in selected
            elif confidence < tau - TOLERANCE:
                assert data not in selected

    @given(chain_database(), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_scheduled_route_agrees_with_exact_selection(self, db, k):
        """Forcing the scheduler on any query matches its exact selection."""
        engine = SproutEngine(db)
        query = chain_query()
        truth = enumerate_truth(db, query)
        result = engine.evaluate_topk(query, k=k, plan="dtree")
        assert_valid_topk(result.confidences(), truth, k)
        for data, confidence in result.confidences().items():
            assert confidence == pytest.approx(truth[data], abs=TOLERANCE)

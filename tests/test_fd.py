"""Tests for FD closure, FD-reducts, chased queries, and rewritings."""

import pytest

from repro.errors import NonHierarchicalQueryError
from repro.algebra.expressions import Comparison
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.fd import chase_is_hierarchical_possible, chased_query, closure, fd_reduct
from repro.query.hierarchy import is_hierarchical
from repro.query.rewrite import effective_boolean_query, effective_signature, is_tractable
from repro.storage.catalog import FunctionalDependency


ORD_FD = FunctionalDependency("Ord", ["okey"], ["ckey", "odate"])
CUST_FD = FunctionalDependency("Cust", ["ckey"], ["cname"])


class TestClosure:
    def test_definition_example(self):
        # CLOSURE_{A->D; BD->E}(ABC) = ABCDE (Section IV).
        fds = [
            FunctionalDependency("T", ["A"], ["D"]),
            FunctionalDependency("T", ["B", "D"], ["E"]),
        ]
        assert closure({"A", "B", "C"}, fds) == frozenset("ABCDE")

    def test_no_fds(self):
        assert closure({"a"}, []) == frozenset({"a"})

    def test_transitive(self):
        fds = [
            FunctionalDependency("T", ["a"], ["b"]),
            FunctionalDependency("T", ["b"], ["c"]),
        ]
        assert closure({"a"}, fds) == frozenset({"a", "b", "c"})


def example_iv3_query():
    """Example IV.3: π_cname(Item(okey,discount) ⋈ Ord(okey,ckey,odate) ⋈ Cust(ckey,cname))."""
    return ConjunctiveQuery(
        "IV.3",
        [
            Atom("Item", ["okey", "discount"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Cust", ["ckey", "cname"]),
        ],
        projection=["cname"],
    )


def example_iv4_query():
    """Example IV.4: π_okey(Item(ckey,okey,discount) ⋈ Ord ⋈ Cust)."""
    return ConjunctiveQuery(
        "IV.4",
        [
            Atom("Item", ["ckey", "okey", "discount"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Cust", ["ckey", "cname"]),
        ],
        projection=["okey"],
    )


class TestFdReduct:
    def test_example_iv3(self):
        query = example_iv3_query()
        assert not is_hierarchical(query)
        reduct = fd_reduct(query, [ORD_FD])
        assert reduct.is_boolean()
        assert set(reduct.atom_of("Item").attributes) == {"okey", "discount", "ckey", "odate"}
        assert set(reduct.atom_of("Cust").attributes) == {"ckey"}
        assert is_hierarchical(reduct)

    def test_example_iv4(self):
        reduct = fd_reduct(example_iv4_query(), [ORD_FD, CUST_FD])
        # The head closure {okey, ckey, odate, cname} is discarded.
        assert set(reduct.atom_of("Item").attributes) == {"discount"}
        assert set(reduct.atom_of("Ord").attributes) == set()
        assert set(reduct.atom_of("Cust").attributes) == set()
        assert is_hierarchical(reduct)

    def test_selection_on_discarded_attribute_is_dropped(self):
        query = ConjunctiveQuery(
            "sel",
            example_iv3_query().atoms,
            projection=["cname"],
            selections=Comparison("cname", "=", "Joe"),
        )
        reduct = fd_reduct(query, [ORD_FD, CUST_FD])
        assert "cname" not in {a for atom in reduct.atoms for a in atom.attributes}
        assert reduct.selection_predicates() == []

    def test_chase_is_hierarchical_possible(self):
        assert chase_is_hierarchical_possible(example_iv3_query(), [ORD_FD])
        assert not chase_is_hierarchical_possible(example_iv3_query(), [])


class TestChasedQuery:
    def test_keeps_projection_and_join_attributes(self):
        chased = chased_query(example_iv3_query(), [ORD_FD])
        assert chased.projection == ("cname",)
        assert "ckey" in chased.atom_of("Item").attributes
        assert "okey" in chased.atom_of("Item").attributes
        assert is_hierarchical(chased)

    def test_no_fds_is_identity_on_attributes(self):
        chased = chased_query(example_iv3_query(), [])
        for atom, original in zip(chased.atoms, example_iv3_query().atoms):
            assert set(atom.attributes) == set(original.attributes)


class TestEffectiveSignature:
    def test_example_iv3_signature(self):
        # The FD-reduct's signature (modulo the sound outermost star, see DESIGN.md).
        signature = effective_signature(example_iv3_query(), [ORD_FD, CUST_FD])
        assert set(signature.tables()) == {"Cust", "Ord", "Item"}
        text = str(signature)
        assert "Item*" in text and "Cust" in text

    def test_example_iv4_signature(self):
        # Example IV.4: Cust Ord Item* (no stars on Cust/Ord).
        signature = effective_signature(example_iv4_query(), [ORD_FD, CUST_FD])
        assert "Cust*" not in str(signature) and "Ord*" not in str(signature)
        assert "Item*" in str(signature)

    def test_intractable_query_raises(self):
        query = ConjunctiveQuery(
            "hard", [Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])]
        )
        with pytest.raises(NonHierarchicalQueryError):
            effective_signature(query, [])

    def test_is_tractable(self):
        hard = ConjunctiveQuery(
            "hard", [Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])]
        )
        assert not is_tractable(hard)
        fixed = [FunctionalDependency("S", ["x"], ["y"])]
        assert is_tractable(hard, fixed)

    def test_effective_boolean_query_without_fds(self):
        boolean = effective_boolean_query(example_iv3_query(), [])
        assert boolean.is_boolean()
        assert [a.table for a in boolean.atoms] == ["Item", "Ord", "Cust"]

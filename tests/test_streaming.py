"""Incremental streaming evaluation: delta updates and standing queries.

Store-level tests pin the delta contract — a probability update re-seeds
exactly the rows carrying the variable and the repaired store is bit-identical
to a from-scratch compilation under the final probability space.  Standing
query tests run scripted and Hypothesis-generated delta interleavings
(updates, inserts, deletes, in any order, refreshed at any point) and assert
the warm answer — decided set, selected exact confidences, decided flag —
equals a fresh :class:`StandingQuery` built from the final state, under either
numeric backend with backend-independent step counts.  Engine-level tests
cover the ``watch_topk`` / ``watch_threshold`` entry points and the
``delta_steps`` field on one-shot results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.errors import PlanningError, ProbabilityError
from repro.prob import HAS_NUMPY
from repro.prob.dtree import DTree, refine_to_budget
from repro.prob.formulas import DNF
from repro.prob.sharedag import SharedDTree, SharedLineageStore
from repro.sprout.streaming import StandingQuery
from repro.storage import Relation, Schema

# ---------------------------------------------------------------------------
# strategies: lineage families plus delta scripts against them
# ---------------------------------------------------------------------------


@st.composite
def lineage_family(draw):
    """2–4 DNFs drawing clauses from one shared pool (≤ 10 variables)."""
    nvars = draw(st.integers(4, 10))
    probability = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
    probabilities = {v: draw(probability) for v in range(nvars)}
    clause = st.sets(st.integers(0, nvars - 1), min_size=1, max_size=3).map(frozenset)
    pool = draw(st.lists(clause, min_size=2, max_size=6, unique=True))
    members = []
    for _ in range(draw(st.integers(2, 4))):
        shared = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=len(pool), unique=True)
        )
        private = draw(st.lists(clause, min_size=0, max_size=3))
        members.append(DNF(shared + private))
    return members, probabilities


@st.composite
def delta_script(draw):
    """A lineage family plus 1–6 deltas (update/insert/delete/refresh)."""
    members, probabilities = draw(lineage_family())
    nvars = len(probabilities)
    probability = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
    clause = st.sets(st.integers(0, nvars - 1), min_size=1, max_size=3).map(frozenset)
    ops = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["update", "insert", "delete", "refresh"]))
        if kind == "update":
            ops.append(("update", draw(st.integers(0, nvars - 1)), draw(probability)))
        elif kind == "insert":
            extra = draw(st.lists(clause, min_size=1, max_size=3, unique=True))
            ops.append(("insert", DNF(extra)))
        elif kind == "delete":
            ops.append(("delete", draw(st.integers(0, 7))))
        else:
            ops.append(("refresh",))
    return members, probabilities, ops


def closed_bounds(view):
    view.refine(epsilon=0.0)
    return view.bounds()


def apply_script(query: StandingQuery, ops) -> None:
    """Replay a delta script; delete indices wrap over the live candidates."""
    inserted = 0
    for op in ops:
        if op[0] == "update":
            query.update_probability(op[1], op[2])
        elif op[0] == "insert":
            query.insert_tuple((f"new{inserted}",), op[1])
            inserted += 1
        elif op[0] == "delete":
            if len(query) <= 1:
                continue
            data = sorted(query.lineage, key=repr)[op[1] % len(query)]
            query.delete_tuple(data)
        else:
            query.refresh()
    query.refresh()


def selected_confidences(query: StandingQuery):
    """(data, confidence) pairs of the last refresh, in reported order."""
    return [tuple(row) for row in query.result.relation]


# ---------------------------------------------------------------------------
# store-level delta propagation
# ---------------------------------------------------------------------------


class TestStoreDeltas:
    def test_update_validates_range(self):
        store = SharedLineageStore()
        with pytest.raises(ProbabilityError):
            store.update_probability(0, -0.1)
        with pytest.raises(ProbabilityError):
            store.update_probability(0, 1.5)

    def test_noop_and_unknown_variable_updates(self):
        store = SharedLineageStore()
        dnf = DNF([[0, 1], [1, 2]])
        store.add_probabilities(dnf, {0: 0.5, 1: 0.4, 2: 0.3})
        SharedDTree(store, dnf)
        assert store.update_probability(0, 0.5).is_noop  # unchanged value
        assert store.update_probability(99, 0.7).is_noop  # no dependent rows
        assert store.probabilities[99] == 0.7  # but the space did move

    @given(lineage_family(), st.integers(0, 3), st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_closed_update_is_bit_identical_to_cold_compile(self, family, which, p):
        """Refine to closure, update, re-close: equals compiling the final space."""
        members, probabilities = family
        variable = which % len(probabilities)
        store = SharedLineageStore()
        for dnf in members:
            store.add_probabilities(dnf, probabilities)
        views = [SharedDTree(store, dnf) for dnf in members]
        for view in views:
            view.refine(epsilon=0.0)
        store.update_probability(variable, p)
        for view in views:
            view.resync()
        warm = [closed_bounds(view) for view in views]

        final = dict(probabilities)
        final[variable] = p
        cold_store = SharedLineageStore()
        for dnf in members:
            cold_store.add_probabilities(dnf, final)
        cold = [closed_bounds(SharedDTree(cold_store, dnf)) for dnf in members]
        assert warm == cold  # bit-identical, not approximately

    @given(lineage_family(), st.integers(0, 3), st.floats(0.05, 0.95), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_mid_refinement_update_stays_sound_and_exact(self, family, which, p, head):
        """An update landing on a half-refined store still closes to the truth."""
        members, probabilities = family
        variable = which % len(probabilities)
        store = SharedLineageStore()
        for dnf in members:
            store.add_probabilities(dnf, probabilities)
        views = [SharedDTree(store, dnf) for dnf in members]
        for view in views:
            view.refine(head)  # partial work only
        store.update_probability(variable, p)
        final = dict(probabilities)
        final[variable] = p
        for view, dnf in zip(views, members):
            view.resync()
            lower, upper = view.bounds()
            assert lower <= upper + 1e-12
            lower, upper = closed_bounds(view)
            truth = refine_to_budget(
                DTree(dnf, final), epsilon=0.0, max_steps=None
            ).probability
            assert lower == pytest.approx(truth, abs=1e-12)
            assert upper == pytest.approx(truth, abs=1e-12)

    @given(lineage_family(), st.integers(0, 3), st.floats(0.05, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_double_update_is_idempotent(self, family, which, p):
        members, probabilities = family
        variable = which % len(probabilities)
        store = SharedLineageStore()
        for dnf in members:
            store.add_probabilities(dnf, probabilities)
        views = [SharedDTree(store, dnf) for dnf in members]
        for view in views:
            view.refine(3)
        first = store.update_probability(variable, p)
        lower = list(store.table.lower)
        upper = list(store.table.upper)
        second = store.update_probability(variable, p)
        assert second.is_noop
        assert not second.touched
        assert list(store.table.lower) == lower
        assert list(store.table.upper) == upper
        assert first.reseeded >= 0  # the first may or may not have been a no-op

    def test_retire_counts_rows_and_resets_past_budget(self):
        store = SharedLineageStore(max_nodes=10)
        probabilities = {i: 0.5 for i in range(8)}
        dnfs = [DNF([[2 * i, 2 * i + 1]]) for i in range(4)]
        views = []
        for dnf in dnfs:
            store.add_probabilities(dnf, probabilities)
            views.append(SharedDTree(store, dnf))
        epoch = store.reset_epoch
        counted = store.retire_view(views[0])
        assert counted >= 1
        assert store.retired_nodes == counted
        for view in views[1:]:
            counted += store.retire_view(view)
        # enough retirements crossed the node budget: epoch bumped, counter zeroed
        assert store.reset_epoch > epoch or store.retired_nodes == counted
        if store.reset_epoch > epoch:
            assert store.retired_nodes == 0

    def test_retired_view_stays_functional(self):
        store = SharedLineageStore()
        dnf = DNF([[0, 1], [1, 2]])
        store.add_probabilities(dnf, {0: 0.5, 1: 0.4, 2: 0.3})
        view = SharedDTree(store, dnf)
        store.retire_view(view)
        lower, upper = closed_bounds(view)
        truth = refine_to_budget(
            DTree(dnf, store.probabilities), epsilon=0.0, max_steps=None
        ).probability
        assert lower == pytest.approx(truth, abs=1e-12)
        assert upper == pytest.approx(truth, abs=1e-12)

    def test_segment_roundtrip_preserves_delta_registries(self):
        store = SharedLineageStore()
        dnf = DNF([[0, 1], [1, 2], [3]])
        store.add_probabilities(dnf, {0: 0.5, 1: 0.4, 2: 0.3, 3: 0.2})
        view = SharedDTree(store, dnf)
        view.refine(epsilon=0.0)
        restored = SharedLineageStore.from_segment(store.export_segment())
        report = restored.update_probability(1, 0.9)
        assert not report.is_noop
        twin = SharedDTree.from_root(restored, view.root)
        twin.resync()
        truth = refine_to_budget(
            DTree(dnf, {0: 0.5, 1: 0.9, 2: 0.3, 3: 0.2}), epsilon=0.0, max_steps=None
        ).probability
        lower, upper = closed_bounds(twin)
        assert lower == pytest.approx(truth, abs=1e-12)
        assert upper == pytest.approx(truth, abs=1e-12)


# ---------------------------------------------------------------------------
# standing queries
# ---------------------------------------------------------------------------


def standing(members, probabilities, **kwargs) -> StandingQuery:
    lineage = {(i,): dnf for i, dnf in enumerate(members)}
    return StandingQuery(lineage, probabilities, **kwargs)


class TestStandingQueryValidation:
    def test_needs_exactly_one_goal(self):
        with pytest.raises(PlanningError):
            StandingQuery({}, {})
        with pytest.raises(PlanningError):
            StandingQuery({}, {}, k=1, tau=0.5)
        with pytest.raises(PlanningError):
            StandingQuery({}, {}, k=0)
        with pytest.raises(PlanningError):
            StandingQuery({}, {}, tau=1.5)
        with pytest.raises(PlanningError):
            StandingQuery({}, {}, k=1, confidence="mystery")

    def test_update_validates_range(self):
        query = StandingQuery({(0,): DNF([[0]])}, {0: 0.5}, k=1)
        with pytest.raises(ProbabilityError):
            query.update_probability(0, 1.5)

    def test_delete_unknown_tuple_raises(self):
        query = StandingQuery({(0,): DNF([[0]])}, {0: 0.5}, k=1)
        with pytest.raises(PlanningError):
            query.delete_tuple((7,))

    def test_insert_cannot_rebind_a_variable(self):
        query = StandingQuery({(0,): DNF([[0]])}, {0: 0.5}, k=1)
        with pytest.raises(ProbabilityError):
            query.insert_tuple((1,), DNF([[0]]), probabilities={0: 0.9})
        query.insert_tuple((1,), DNF([[0, 9]]), probabilities={9: 0.25})
        assert query.probabilities[9] == 0.25


class TestStandingQueryDeltas:
    def test_initial_refresh_matches_cold_decision(self):
        members = [DNF([[0, 1], [1, 2]]), DNF([[0, 1], [2, 3]]), DNF([[3]])]
        probabilities = {0: 0.8, 1: 0.6, 2: 0.5, 3: 0.3}
        query = standing(members, probabilities, k=2)
        assert query.decided
        assert len(query.selected) == 2
        assert query.last_entered == query.selected  # everything is new on tick 0
        assert query.result.delta_steps == query.result.refine_steps

    def test_update_redecides_and_tracks_transitions(self):
        members = [DNF([[0]]), DNF([[1]]), DNF([[2]])]
        probabilities = {0: 0.9, 1: 0.5, 2: 0.1}
        query = standing(members, probabilities, k=1)
        assert query.selected == [(0,)]
        report = query.update_probability(2, 0.99)
        assert report is not None and not report.is_noop
        query.refresh()
        assert query.selected == [(2,)]
        assert query.last_entered == [(2,)]
        assert query.last_left == [(0,)]

    def test_untouched_decision_costs_zero_delta_steps(self):
        members = [DNF([[0]]), DNF([[1]]), DNF([[2]])]
        probabilities = {0: 0.9, 1: 0.5, 2: 0.1, 7: 0.5}
        query = standing(members, probabilities, k=1)
        report = query.update_probability(7, 0.8)  # gates no candidate
        assert report.is_noop
        result = query.refresh()
        assert result.delta_steps == 0
        assert query.selected == [(0,)]

    def test_delete_all_candidates_is_a_decided_empty_answer(self):
        query = StandingQuery({(0,): DNF([[0]])}, {0: 0.5}, k=1)
        query.delete_tuple((0,))
        result = query.refresh()
        assert query.selected == []
        assert query.decided
        assert len(result.relation) == 0

    @given(delta_script())
    @settings(max_examples=30, deadline=None)
    def test_any_interleaving_matches_fresh_compilation(self, script):
        """The streaming differential: warm end state == from-scratch end state."""
        members, probabilities, ops = script
        k = min(2, len(members))
        query = standing(members, probabilities, k=k)
        apply_script(query, ops)
        fresh = StandingQuery(dict(query.lineage), dict(query.probabilities), k=k)
        assert query.decided == fresh.decided
        assert query.selected == fresh.selected
        assert selected_confidences(query) == selected_confidences(fresh)

    @given(delta_script(), st.floats(0.1, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_threshold_interleaving_matches_fresh_compilation(self, script, tau):
        members, probabilities, ops = script
        query = standing(members, probabilities, tau=tau)
        apply_script(query, ops)
        fresh = StandingQuery(dict(query.lineage), dict(query.probabilities), tau=tau)
        assert query.decided == fresh.decided
        assert set(query.selected) == set(fresh.selected)
        assert sorted(selected_confidences(query), key=repr) == sorted(
            selected_confidences(fresh), key=repr
        )

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs both numeric backends")
    @given(delta_script())
    @settings(max_examples=15, deadline=None)
    def test_backends_agree_on_steps_and_answers(self, script):
        members, probabilities, ops = script
        k = min(2, len(members))
        runs = []
        for vectorize in (False, True):
            query = standing(members, probabilities, k=k, vectorize=vectorize)
            apply_script(query, ops)
            runs.append(
                (query.selected, selected_confidences(query), query.total_steps)
            )
        assert runs[0] == runs[1]

    @given(delta_script())
    @settings(max_examples=15, deadline=None)
    def test_legacy_mode_agrees_with_shared_mode(self, script):
        members, probabilities, ops = script
        k = min(2, len(members))
        shared = standing(members, probabilities, k=k)
        legacy = standing(members, probabilities, k=k, shared_lineage=False)
        apply_script(shared, ops)
        apply_script(legacy, ops)
        assert legacy.selected == shared.selected
        assert selected_confidences(legacy) == selected_confidences(shared)

    @given(lineage_family())
    @settings(max_examples=20, deadline=None)
    def test_insert_delete_round_trip_restores_the_answer(self, family):
        members, probabilities = family
        k = min(2, len(members))
        query = standing(members, probabilities, k=k)
        before = (query.selected, selected_confidences(query))
        query.insert_tuple(("extra",), DNF([next(iter(members[0].clauses))]))
        query.refresh()
        query.delete_tuple(("extra",))
        query.refresh()
        assert (query.selected, selected_confidences(query)) == before

    def test_warm_insert_of_compiled_lineage_is_cheap(self):
        members = [DNF([[0, 1], [1, 2]]), DNF([[0, 1], [2, 3]])]
        probabilities = {0: 0.8, 1: 0.6, 2: 0.5, 3: 0.3}
        query = standing(members, probabilities, k=1)
        warmed = query.total_steps
        query.insert_tuple(("twin",), DNF(members[0].clauses))  # already compiled
        result = query.refresh()
        assert result.delta_steps <= max(2, warmed)  # decided on warm rows
        # interned onto the same hash-consed rows as the original tuple
        assert query._candidates[("twin",)].tree.root == query._candidates[(0,)].tree.root


# ---------------------------------------------------------------------------
# engine entry points
# ---------------------------------------------------------------------------


def chain_query():
    return ConjunctiveQuery(
        "chain",
        [Atom("R", ["a", "x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
        projection=["a"],
    )


@pytest.fixture
def chain_db():
    db = ProbabilisticDatabase("chain-db")
    db.add_table(
        Relation(
            "R",
            Schema.of("a:int", "x:int"),
            [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 1)],
        ),
        probabilities=[0.8, 0.3, 0.6, 0.4, 0.5, 0.7, 0.25],
    )
    db.add_table(
        Relation(
            "S",
            Schema.of("x:int", "y:int"),
            [(0, 0), (0, 1), (1, 1), (2, 0), (2, 1), (1, 0)],
        ),
        probabilities=[0.45, 0.85, 0.3, 0.6, 0.2, 0.75],
    )
    db.add_table(
        Relation("T", Schema.of("y:int"), [(0,), (1,)]), probabilities=[0.9, 0.35]
    )
    return db


class TestEngineWatch:
    def test_watch_topk_matches_one_shot(self, chain_db):
        engine = SproutEngine(chain_db)
        query = chain_query()
        watch = engine.watch_topk(query, k=2)
        one_shot = engine.evaluate_topk(query, k=2)
        assert watch.decided
        expected = [tuple(row)[:-1] for row in one_shot.relation]
        assert watch.selected == expected

    def test_watch_threshold_tracks_updates(self, chain_db):
        engine = SproutEngine(chain_db)
        watch = engine.watch_threshold(chain_query(), tau=0.5)
        baseline = set(watch.selected)
        assert baseline  # the chain instance has tuples above 0.5
        # drive every marginal to zero: the standing answer empties out
        for variable in sorted(watch.probabilities):
            watch.update_probability(variable, 0.0)
        watch.refresh()
        assert watch.selected == []
        assert set(watch.last_left) == baseline

    def test_watch_validation(self, chain_db):
        engine = SproutEngine(chain_db)
        with pytest.raises(PlanningError):
            engine.watch_topk(chain_query(), k=0)
        with pytest.raises(PlanningError):
            engine.watch_threshold(chain_query(), tau=-0.5)

    def test_watch_store_is_private(self, chain_db):
        engine = SproutEngine(chain_db)
        watch = engine.watch_topk(chain_query(), k=1)
        variable = next(iter(watch.probabilities))
        watch.update_probability(variable, 0.0)
        # the engine's own evaluation is untouched by standing-space deltas
        result = engine.evaluate_topk(chain_query(), k=1)
        assert next(iter(result.relation))[-1] > 0.0

    def test_watch_topk_with_fewer_candidates_than_k(self, chain_db):
        # k past the population is a decided full answer, not an error.
        engine = SproutEngine(chain_db)
        watch = engine.watch_topk(chain_query(), k=50)
        assert watch.decided
        assert len(watch.selected) == len(watch)
        result = watch.refresh()
        assert watch.decided
        assert len(result.relation) == len(watch)

    def test_watch_deleted_to_empty_refreshes_to_decided_empty(self, chain_db):
        # Deleting every tuple must leave a decided empty answer; refresh()
        # and update_probability() keep working on the emptied standing set.
        engine = SproutEngine(chain_db)
        watch = engine.watch_topk(chain_query(), k=1)
        variable = next(iter(watch.probabilities))
        for data in list(watch.lineage):
            watch.delete_tuple(data)
        result = watch.refresh()
        assert watch.decided
        assert watch.selected == []
        assert len(result.relation) == 0
        assert result.delta_steps == 0
        watch.update_probability(variable, 0.0)
        assert watch.refresh().decided

    def test_one_shot_results_report_delta_steps(self, chain_db):
        engine = SproutEngine(chain_db)
        result = engine.evaluate_topk(chain_query(), k=2)
        assert result.delta_steps == result.refine_steps
        bounded = engine.evaluate(chain_query(), confidence="approx", epsilon=0.25)
        assert bounded.delta_steps == bounded.refine_steps

"""Deadlines (anytime degradation), client retries, and shutdown ordering.

Deadline semantics under test: the wall-clock budget is checked only
*between* refinement rounds, so an expired request returns ``decided:
false`` with the current — sound, monotonically shrunk — bounds and
``degraded: "deadline"``; it never aborts mid-round, never returns a wrong
bound, and a request that never hits its deadline is bit-identical to one
that had none.  The client side proves the retry satellite: transport
failures surface as structured :class:`ServiceConnectionError` and retry
under jittered exponential backoff, honouring ``Retry-After``.
"""

import socket
import threading
import time

import pytest

from repro.deadline import Deadline
from repro.errors import ServiceConnectionError, ServiceError
from repro.faults import FaultPlan, injected
from repro.query.parser import parse_query
from repro.service import (
    QueryService,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    result_payload,
)
from repro.service.__main__ import demo_database
from repro.sprout.engine import SproutEngine

SQL = "SELECT room, conf() FROM alarm, uplink, zone_ok"


def unsafe_query():
    db = demo_database()
    return db, parse_query(SQL, db.catalog).query


class TestDeadline:
    def test_clock_basics(self):
        assert Deadline.after_ms(0).expired() is True
        generous = Deadline.after_ms(60_000)
        assert generous.expired() is False
        assert 0 < generous.remaining() <= 60.0

    def test_expired_deadline_degrades_with_sound_bounds(self):
        db, query = unsafe_query()
        with SproutEngine(db, workers=0) as engine:
            exact = engine.evaluate(query).confidences()
            degraded = engine.evaluate_topk(
                query, k=2, deadline=Deadline.after_ms(0)
            )
        assert degraded.decided is False
        assert degraded.degraded == "deadline"
        assert degraded.refine_steps == 0  # expired before the first round
        # Anytime soundness: every reported bracket contains the true
        # marginal the refinement would have converged to.
        assert degraded.bounds
        for data, (lower, upper) in degraded.bounds.items():
            assert lower <= exact[data] <= upper

    def test_generous_deadline_is_bit_identical_to_none(self):
        db, query = unsafe_query()
        with SproutEngine(db, workers=0) as engine:
            without = result_payload(engine.evaluate_topk(query, k=2))
        with SproutEngine(demo_database(), workers=0) as engine:
            with_deadline = result_payload(
                engine.evaluate_topk(query, k=2, deadline=Deadline.after_ms(60_000))
            )
        assert with_deadline == without
        assert with_deadline["degraded"] is None

    def test_threshold_and_exact_mode_degrade_too(self):
        db, query = unsafe_query()
        with SproutEngine(db, workers=0) as engine:
            # tau=0.5 partitions this workload from the *initial* bounds, so
            # the decision itself lands in 0 steps — but exact-mode finishing
            # is deadline-cut, and the payload says so.
            threshold = engine.evaluate_threshold(
                query, tau=0.5, deadline=Deadline.after_ms(0)
            )
            assert threshold.degraded == "deadline"
            assert threshold.refine_steps == 0
            exact = engine.evaluate_topk(
                query, k=2, confidence="exact", deadline=Deadline.after_ms(0)
            )
            assert exact.degraded == "deadline"
            assert exact.decided is False

    def test_degraded_bounds_are_within_the_monotone_envelope(self):
        # A later deadline can only shrink brackets: width(t=0) >= width(t=inf),
        # bracket(t=0) contains bracket(t=inf) per tuple.
        db, query = unsafe_query()
        with SproutEngine(db, workers=0) as engine:
            wide = engine.evaluate_topk(query, k=2, deadline=Deadline.after_ms(0))
        with SproutEngine(demo_database(), workers=0) as engine:
            done = engine.evaluate_topk(query, k=2)
        for data, (lower, upper) in done.bounds.items():
            wide_lower, wide_upper = wide.bounds[data]
            assert wide_lower <= lower + 1e-12
            assert upper <= wide_upper + 1e-12


class TestServiceDeadlines:
    def test_timeout_returns_degraded_200_payload(self):
        with QueryService(demo_database()) as service:
            degraded = service.execute("topk", {"sql": SQL, "k": 2, "timeout_ms": 0})
            assert degraded["decided"] is False
            assert degraded["degraded"] == "deadline"
            assert degraded["bounds"]
            finished = service.execute("topk", {"sql": SQL, "k": 2})
            assert finished["decided"] is True
            assert finished["degraded"] is None
            # Envelope: the degraded brackets contain the finished ones.
            wide = {tuple(d): (lo, hi) for d, lo, hi in degraded["bounds"]}
            for data, lower, upper in finished.get("bounds", []):
                assert wide[tuple(data)][0] <= lower + 1e-12
                assert upper <= wide[tuple(data)][1] + 1e-12

    def test_default_timeout_from_config(self):
        config = ServiceConfig(default_timeout_ms=0)
        with QueryService(demo_database(), config=config) as service:
            degraded = service.execute("topk", {"sql": SQL, "k": 2})
            assert degraded["degraded"] == "deadline"
            # A per-request budget overrides the default.
            finished = service.execute(
                "topk", {"sql": SQL, "k": 2, "timeout_ms": 60_000}
            )
            assert finished["decided"] is True

    def test_timeout_rejected_on_evaluate(self):
        with QueryService(demo_database()) as service:
            with pytest.raises(ServiceError, match="timeout_ms"):
                service.execute("evaluate", {"sql": SQL, "timeout_ms": 5})

    def test_timeout_validation(self):
        with QueryService(demo_database()) as service:
            for bad in (-1, "fast", True):
                with pytest.raises(ServiceError):
                    service.execute("topk", {"sql": SQL, "k": 2, "timeout_ms": bad})

    def test_degraded_subscription_finishes_on_a_later_refresh(self):
        with QueryService(demo_database()) as service:
            created = service.execute(
                "subscribe", {"sql": SQL, "k": 2, "timeout_ms": 0}
            )
            assert created["decided"] is False
            variables = created["variables"]
            updated = service.execute(
                "subscription_update",
                {
                    "subscription": created["subscription"],
                    "variable": variables[0],
                    "probability": 0.5,
                },
            )
            assert updated["decided"] is True  # un-budgeted refresh finishes


class _ScriptedServer:
    """A raw TCP server that plays one scripted handler per connection."""

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.host, self.port = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for handler in self.script:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                try:
                    handler(conn)
                except OSError:  # pragma: no cover - client already gone
                    pass

    def close(self):
        self._sock.close()
        self._thread.join(timeout=10)


def _drop_mid_response(conn):
    conn.recv(65536)
    # Half a status line, then a hard close: the classic mid-response reset.
    conn.sendall(b"HTTP/1.1 200 O")


def _truncated_body(conn):
    conn.recv(65536)
    body = b'{"ok": tru'  # shorter than Content-Length promises
    conn.sendall(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
        b"Content-Length: 12\r\nConnection: close\r\n\r\n" + body
    )


def _ok(conn):
    conn.recv(65536)
    body = b'{"ok": true}'
    conn.sendall(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n".encode()
        + b"Connection: close\r\n\r\n"
        + body
    )


def _overloaded(conn):
    conn.recv(65536)
    body = b'{"error": "busy"}'
    conn.sendall(
        b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n".encode()
        + b"Retry-After: 2\r\nConnection: close\r\n\r\n"
        + body
    )


class TestClientRetries:
    """The retry satellite, proven against a scripted flaky server."""

    def test_mid_response_drop_is_retried_through(self):
        server = _ScriptedServer([_drop_mid_response, _ok])
        try:
            client = ServiceClient(
                server.host,
                server.port,
                retry=RetryPolicy(retries=2, backoff=0.001, seed=0),
            )
            assert client.must("GET", "/healthz") == {"ok": True}
            assert server.connections == 2
        finally:
            server.close()

    def test_truncated_body_is_a_structured_error_and_retried(self):
        server = _ScriptedServer([_truncated_body, _ok])
        try:
            client = ServiceClient(
                server.host,
                server.port,
                retry=RetryPolicy(retries=2, backoff=0.001, seed=0),
            )
            assert client.must("GET", "/healthz") == {"ok": True}
        finally:
            server.close()

    def test_exhausted_budget_surfaces_the_structured_error(self):
        server = _ScriptedServer([_drop_mid_response] * 3)
        try:
            client = ServiceClient(
                server.host,
                server.port,
                retry=RetryPolicy(retries=2, backoff=0.001, seed=0),
            )
            with pytest.raises(ServiceConnectionError):
                client.must("GET", "/healthz")
            assert server.connections == 3  # 1 try + 2 retries, then give up
        finally:
            server.close()

    def test_connection_refused_is_structured_not_raw(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        client = ServiceClient("127.0.0.1", free_port, retry=RetryPolicy(retries=0))
        with pytest.raises(ServiceConnectionError) as caught:
            client.healthz()
        assert isinstance(caught.value.cause, OSError)

    def test_retry_after_raises_the_backoff_floor(self):
        sleeps = []
        server = _ScriptedServer([_overloaded, _ok])
        try:
            client = ServiceClient(
                server.host,
                server.port,
                retry=RetryPolicy(retries=1, backoff=0.001, seed=0),
                sleep=sleeps.append,
            )
            assert client.must("GET", "/healthz") == {"ok": True}
            assert len(sleeps) == 1
            assert sleeps[0] >= 2.0  # the server's Retry-After: 2 is honoured
        finally:
            server.close()

    def test_retry_budget_zero_fails_fast_on_429(self):
        from repro.errors import ServiceOverloadedError

        sleeps = []
        server = _ScriptedServer([_overloaded])
        try:
            client = ServiceClient(
                server.host,
                server.port,
                retry=RetryPolicy(retries=0),
                sleep=sleeps.append,
            )
            with pytest.raises(ServiceOverloadedError):
                client.must("GET", "/healthz")
            assert sleeps == []
        finally:
            server.close()

    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        policy = RetryPolicy(retries=5, backoff=0.1, max_backoff=1.0, jitter=0.25, seed=7)
        delays = [policy.delay(attempt) for attempt in range(5)]
        for attempt, delay in enumerate(delays):
            base = min(0.1 * (2 ** attempt), 1.0)
            assert base <= delay <= base * 1.25


class TestShutdownOrdering:
    """The shutdown trio: no hangs, no dropped admitted jobs."""

    def test_close_during_in_flight_deadline_degraded_requests(self):
        service = QueryService(demo_database()).start()
        futures = [
            service.submit("topk", {"sql": SQL, "k": 2, "timeout_ms": 0})
            for _ in range(3)
        ]
        began = time.monotonic()
        service.close()  # drains the admitted jobs, then stops the lane
        assert time.monotonic() - began < 30
        for future in futures:
            payload = future.result(timeout=0)  # already resolved by close
            assert payload["degraded"] == "deadline"
        with pytest.raises(ServiceError):
            service.submit("topk", {"sql": SQL, "k": 2})

    def test_standing_query_close_races_a_delta(self):
        db, query = unsafe_query()
        engine = SproutEngine(db, workers=0, refine_lanes=2)
        watch = engine.watch_topk(query, k=2)
        variables = sorted(watch.probabilities)
        failures = []

        def hammer():
            try:
                for i in range(20):
                    watch.update_probability(variables[i % len(variables)], 0.4)
                    watch.refresh()
            except Exception as error:  # pragma: no cover - the test's assertion
                failures.append(error)

        thread = threading.Thread(target=hammer)
        thread.start()
        for _ in range(10):
            watch.close()  # idempotent; races the refresh loop's lane pool
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not failures
        watch.refresh()  # still functional after every close
        watch.close()
        engine.close()

    def test_engine_close_after_respawned_pool(self):
        db, query = unsafe_query()
        # shared_lineage pinned: lane pools (and their supervision) exist only
        # over the shared store, so this must hold on the
        # REPRO_SHARED_LINEAGE=0 leg too.
        engine = SproutEngine(db, workers=0, refine_lanes=2, shared_lineage=True)
        with injected(FaultPlan.parse("lane_pool.submit:1")):
            engine.evaluate_topk(query, k=2)
        assert engine.cache_stats()["pool_respawns"] == 1
        began = time.monotonic()
        engine.close()  # the respawned pool joins without hanging
        assert time.monotonic() - began < 30

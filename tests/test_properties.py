"""Property-based tests of the core invariant: every evaluation path computes
the possible-worlds confidence.

Hypothesis generates small random tuple-independent databases for a fixed
family of query shapes (one-to-many joins, products, projections), and the
engine's plan styles are checked against brute-force world enumeration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Atom, ConjunctiveQuery, ProbabilisticDatabase, SproutEngine
from repro.prob import confidences_by_enumeration
from repro.sprout import evaluate_deterministic
from repro.storage import Relation, Schema

from helpers import assert_confidences_close


probabilities = st.floats(min_value=0.05, max_value=0.95)


@st.composite
def two_table_database(draw):
    """R(a) and S(a, b) with a one-to-many join on ``a`` (at most 12 variables)."""
    r_size = draw(st.integers(1, 3))
    s_size = draw(st.integers(1, 6))
    r_rows = [(i,) for i in range(r_size)]
    s_rows = [
        (draw(st.integers(0, r_size - 1)), j) for j in range(s_size)
    ]
    r_probs = [draw(probabilities) for _ in r_rows]
    s_probs = [draw(probabilities) for _ in s_rows]
    db = ProbabilisticDatabase("prop")
    db.add_table(
        Relation("R", Schema.of("a:int"), r_rows), probabilities=r_probs, primary_key=["a"]
    )
    db.add_table(Relation("S", Schema.of("a:int", "b:int"), s_rows), probabilities=s_probs)
    return db


@st.composite
def three_table_database(draw):
    """Cust(c) / Ord(o, c) / Item(o, d, line): the paper's schema in miniature.

    The extra ``line`` column keeps Item rows distinct (the data model requires
    a set of tuples) while still allowing several items with the same ``(o, d)``
    combination, which is what creates duplicate answer tuples.
    """
    cust_size = draw(st.integers(1, 2))
    ord_size = draw(st.integers(1, 3))
    item_size = draw(st.integers(1, 5))
    cust_rows = [(i,) for i in range(cust_size)]
    ord_rows = [(j, draw(st.integers(0, cust_size - 1))) for j in range(ord_size)]
    item_rows = [
        (draw(st.integers(0, ord_size - 1)), draw(st.integers(0, 2)), line)
        for line in range(item_size)
    ]
    db = ProbabilisticDatabase("prop3")
    db.add_table(
        Relation("Cust", Schema.of("c:int"), cust_rows),
        probabilities=[draw(probabilities) for _ in cust_rows],
        primary_key=["c"],
    )
    db.add_table(
        Relation("Ord", Schema.of("o:int", "c:int"), ord_rows),
        probabilities=[draw(probabilities) for _ in ord_rows],
        primary_key=["o"],
    )
    db.add_table(
        Relation("Item", Schema.of("o:int", "d:int", "line:int"), item_rows),
        probabilities=[draw(probabilities) for _ in item_rows],
        primary_key=["o", "line"],
    )
    return db


def check_all_plans(db, query, plans=("lazy", "eager", "hybrid", "lineage")):
    truth = confidences_by_enumeration(
        db, lambda instance: evaluate_deterministic(query, instance)
    )
    engine = SproutEngine(db)
    for plan in plans:
        result = engine.evaluate(query, plan=plan)
        assert_confidences_close(result.confidences(), truth, 1e-9)


class TestTwoTableProperties:
    @given(two_table_database())
    @settings(max_examples=25, deadline=None)
    def test_projection_query(self, db):
        query = ConjunctiveQuery("P", [Atom("R", ["a"]), Atom("S", ["a", "b"])], projection=["a"])
        check_all_plans(db, query)

    @given(two_table_database())
    @settings(max_examples=25, deadline=None)
    def test_boolean_query(self, db):
        query = ConjunctiveQuery("B", [Atom("R", ["a"]), Atom("S", ["a", "b"])])
        check_all_plans(db, query)

    @given(two_table_database())
    @settings(max_examples=20, deadline=None)
    def test_non_join_projection(self, db):
        query = ConjunctiveQuery("NP", [Atom("R", ["a"]), Atom("S", ["a", "b"])], projection=["b"])
        check_all_plans(db, query)


class TestThreeTableProperties:
    @given(three_table_database())
    @settings(max_examples=20, deadline=None)
    def test_chain_boolean(self, db):
        query = ConjunctiveQuery(
            "chainB",
            [Atom("Cust", ["c"]), Atom("Ord", ["o", "c"]), Atom("Item", ["o", "d"])],
        )
        check_all_plans(db, query)

    @given(three_table_database())
    @settings(max_examples=20, deadline=None)
    def test_chain_projection(self, db):
        query = ConjunctiveQuery(
            "chainP",
            [Atom("Cust", ["c"]), Atom("Ord", ["o", "c"]), Atom("Item", ["o", "d"])],
            projection=["d"],
        )
        check_all_plans(db, query)

    @given(three_table_database())
    @settings(max_examples=15, deadline=None)
    def test_hard_pattern_via_lineage(self, db):
        # Drop the Ord-Item join attribute from Item's perspective: the query
        # becomes the hard pattern, but with okey being Ord's key the FD-reduct
        # is hierarchical, so every plan still works.
        query = ConjunctiveQuery(
            "fd-rescued",
            [Atom("Cust", ["c"]), Atom("Ord", ["o", "c"]), Atom("Item", ["o", "d"])],
            projection=["c"],
        )
        check_all_plans(db, query)


class TestScanCountInvariant:
    @given(three_table_database())
    @settings(max_examples=10, deadline=None)
    def test_fd_signature_never_needs_more_scans(self, db):
        from repro.query.signature import num_scans

        engine = SproutEngine(db)
        query = ConjunctiveQuery(
            "scans",
            [Atom("Cust", ["c"]), Atom("Ord", ["o", "c"]), Atom("Item", ["o", "d"])],
            projection=["c"],
        )
        with_fds = num_scans(engine.signature_for(query, use_fds=True))
        without_fds = num_scans(engine.signature_for(query, use_fds=False))
        assert with_fds <= without_fds

"""Tests of the anytime d-tree confidence engine (repro.prob.dtree).

Differential tests pin the d-tree's exact evaluation to brute-force world
enumeration; property tests check the anytime contract: the lower/upper
bounds always bracket the true probability, shrink monotonically as the
epsilon budget tightens, and the midpoint honours the requested error.
The Karp–Luby estimator is validated as an unbiased cross-check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ApproximationBudgetError, ProbabilityError
from repro.prob.dtree import (
    ApproxResult,
    DTree,
    DTreeCache,
    dtree_probability,
    karp_luby_probability,
)
from repro.prob.formulas import DNF, dnf_probability, dnf_probability_enumeration
from repro.prob.synthetic import bipartite_lineage, hub_lineage


@st.composite
def small_dnf(draw):
    """A positive DNF over at most 10 variables with its probability map."""
    nvars = draw(st.integers(1, 10))
    nclauses = draw(st.integers(1, 7))
    clauses = [
        frozenset(
            draw(
                st.lists(
                    st.integers(0, nvars - 1),
                    min_size=1,
                    max_size=min(3, nvars),
                    unique=True,
                )
            )
        )
        for _ in range(nclauses)
    ]
    probs = {
        v: draw(st.floats(min_value=0.05, max_value=0.95)) for v in range(nvars)
    }
    return DNF(clauses), probs


class TestExactCompilation:
    @given(small_dnf())
    @settings(max_examples=60, deadline=None)
    def test_matches_enumeration(self, case):
        dnf, probs = case
        truth = dnf_probability_enumeration(dnf, probs)
        result = dtree_probability(dnf, probs)
        assert result.exact
        assert result.lower == result.upper
        assert result.probability == pytest.approx(truth, abs=1e-9)

    @given(small_dnf())
    @settings(max_examples=30, deadline=None)
    def test_matches_shannon_expansion(self, case):
        dnf, probs = case
        assert dtree_probability(dnf, probs).probability == pytest.approx(
            dnf_probability(dnf, probs), abs=1e-9
        )

    def test_constants(self):
        assert dtree_probability(DNF(), {}).probability == 0.0
        assert dtree_probability(DNF([frozenset()]), {}).probability == 1.0

    def test_single_clause(self):
        dnf = DNF([frozenset({1, 2})])
        result = dtree_probability(dnf, {1: 0.5, 2: 0.4})
        assert result.exact
        assert result.probability == pytest.approx(0.2)
        assert result.steps == 0  # closed without any Shannon step

    def test_independent_partition_needs_no_branching(self):
        # x1 ∨ x2 splits into components; x1x2 ∨ x1x3 factors out x1.
        assert dtree_probability(DNF([{1}, {2}]), {1: 0.5, 2: 0.5}).steps == 0
        result = dtree_probability(
            DNF([{1, 2}, {1, 3}]), {1: 0.5, 2: 0.5, 3: 0.5}
        )
        assert result.steps <= 1
        assert result.probability == pytest.approx(0.5 * (1 - 0.25))

    def test_missing_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            dtree_probability(DNF([{1}]), {})

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ProbabilityError):
            dtree_probability(DNF([{1}]), {1: 0.5}, epsilon=-0.1)

    def test_exact_on_larger_unsafe_lineage(self):
        dnf, probs = bipartite_lineage(12, 12, 25, seed=5)
        truth = dnf_probability(dnf, probs)
        assert dtree_probability(dnf, probs).probability == pytest.approx(
            truth, abs=1e-9
        )


class TestAnytimeBounds:
    @given(small_dnf(), st.floats(min_value=0.005, max_value=0.2))
    @settings(max_examples=60, deadline=None)
    def test_bounds_bracket_truth_and_meet_budget(self, case, epsilon):
        dnf, probs = case
        truth = dnf_probability_enumeration(dnf, probs)
        result = dtree_probability(dnf, probs, epsilon=epsilon)
        assert result.lower - 1e-12 <= truth <= result.upper + 1e-12
        assert result.gap <= 2.0 * epsilon + 1e-12
        assert abs(result.probability - truth) <= epsilon + 1e-12

    @given(small_dnf())
    @settings(max_examples=40, deadline=None)
    def test_bounds_shrink_monotonically_with_epsilon(self, case):
        dnf, probs = case
        previous = None
        for epsilon in (0.2, 0.1, 0.05, 0.01, 0.0):
            result = dtree_probability(dnf, probs, epsilon=epsilon)
            if previous is not None:
                assert result.lower >= previous.lower - 1e-12
                assert result.upper <= previous.upper + 1e-12
            previous = result
        assert previous.exact

    def test_bounds_on_unsafe_lineage(self):
        dnf, probs = bipartite_lineage(25, 25, 60, seed=9)
        truth = dnf_probability(DNF(dnf.clauses), probs)
        result = dtree_probability(dnf, probs, epsilon=0.02)
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9
        assert result.gap <= 0.04 + 1e-9

    def test_relative_budget(self):
        dnf, probs = hub_lineage(50, 8, 3, seed=2)
        truth = dnf_probability(DNF(dnf.clauses), probs)
        result = dtree_probability(dnf, probs, epsilon=0.05, relative=True)
        assert result.lower - 1e-9 <= truth <= result.upper + 1e-9
        assert result.gap <= 2 * 0.05 * result.lower + 1e-9
        assert abs(result.probability - truth) <= 0.05 * truth + 1e-9

    def test_hub_lineage_converges_fast(self):
        # 800 clauses, non-hierarchical: the eps=0.01 bracket must come from a
        # handful of expansions (this is the acceptance scenario; the old
        # Shannon fallback does not terminate on this input in reasonable time).
        dnf, probs = hub_lineage(200, 25, 4, seed=3)
        assert len(dnf) == 800
        result = dtree_probability(dnf, probs, epsilon=0.01)
        assert result.gap <= 0.02 + 1e-12
        assert result.steps < 1000

    def test_budget_error_is_structured(self):
        dnf, probs = bipartite_lineage(31, 31, 200, seed=7)
        with pytest.raises(ApproximationBudgetError) as info:
            dtree_probability(dnf, probs, epsilon=0.001, max_steps=50)
        error = info.value
        assert error.steps >= 50
        assert 0.0 <= error.lower <= error.upper <= 1.0
        assert error.epsilon == 0.001
        assert not error.relative
        truth_bracket = dtree_probability(dnf, probs, epsilon=0.05)
        assert error.lower <= truth_bracket.upper
        assert error.upper >= truth_bracket.lower

    def test_stepwise_api(self):
        dnf, probs = bipartite_lineage(10, 10, 18, seed=1)
        tree = DTree(dnf, probs)
        gaps = []
        while not tree.is_exact and len(gaps) < 500:
            lower, upper = tree.bounds()
            gaps.append(upper - lower)
            if not tree.expand_once():
                break
        lower, upper = tree.bounds()
        assert upper - lower <= min(gaps) + 1e-12
        truth = dnf_probability(DNF(dnf.clauses), probs)
        assert lower - 1e-9 <= truth <= upper + 1e-9


class TestKarpLuby:
    def test_matches_truth_within_interval(self):
        dnf, probs = bipartite_lineage(15, 15, 40, seed=13)
        truth = dnf_probability(DNF(dnf.clauses), probs)
        mc = karp_luby_probability(dnf, probs, samples=20_000, seed=17)
        assert abs(mc.estimate - truth) <= 3 * mc.half_width + 0.01
        assert mc.lower <= truth <= mc.upper or abs(mc.estimate - truth) < 0.02

    def test_deterministic_given_seed(self):
        dnf, probs = bipartite_lineage(10, 10, 20, seed=4)
        first = karp_luby_probability(dnf, probs, samples=2_000, seed=5)
        second = karp_luby_probability(dnf, probs, samples=2_000, seed=5)
        assert first == second

    def test_constants(self):
        assert karp_luby_probability(DNF(), {}, samples=10).estimate == 0.0
        assert karp_luby_probability(DNF([frozenset()]), {}, samples=10).estimate == 1.0

    def test_invalid_samples(self):
        with pytest.raises(ProbabilityError):
            karp_luby_probability(DNF([{1}]), {1: 0.5}, samples=0)


class TestDTreeCache:
    def test_hit_returns_the_same_tree(self):
        cache = DTreeCache()
        dnf, probs = bipartite_lineage(4, 4, 6, seed=11)
        first = cache.get(dnf, probs)
        second = cache.get(dnf, probs)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_refinement_is_reused(self):
        cache = DTreeCache()
        dnf, probs = bipartite_lineage(8, 8, 20, seed=11)
        exact = dtree_probability(dnf, probs, cache=cache)
        again = dtree_probability(dnf, probs, cache=cache)
        assert again.probability == exact.probability
        assert exact.steps > 0 and again.steps == 0  # steps count per call

    def test_probability_space_is_guarded(self):
        cache = DTreeCache()
        cache.get(DNF([{1, 2}, {2, 3}]), {1: 0.5, 2: 0.5, 3: 0.5})
        with pytest.raises(ProbabilityError):
            # Same variables, different marginals — even under a clause set
            # the cache has never seen (the shared memo would be stale).
            cache.get(DNF([{1, 3}]), {1: 0.9, 3: 0.5})

    def test_lru_eviction_bounds_the_cache(self):
        cache = DTreeCache(max_entries=2)
        probs = {i: 0.5 for i in range(9)}
        for start in (0, 3, 6):
            cache.get(DNF([{start, start + 1}, {start + 1, start + 2}]), probs)
        assert len(cache) == 2

    def test_clear_resets_everything(self):
        cache = DTreeCache()
        cache.get(DNF([{1, 2}]), {1: 0.5, 2: 0.5})
        cache.clear()
        assert len(cache) == 0 and cache.misses == 0
        cache.get(DNF([{1, 2}]), {1: 0.9, 2: 0.5})  # new space is fine now


class TestApproxResult:
    def test_str_and_gap(self):
        result = ApproxResult(0.5, 0.4, 0.6, steps=3, exact=False)
        assert result.gap == pytest.approx(0.2)
        assert "approx" in str(result)
        exact = ApproxResult(0.5, 0.5, 0.5, steps=0, exact=True)
        assert "exact" in str(exact)

"""Tests for variables, probabilistic tables, databases, worlds, and lineage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, ProbabilityError, SchemaError
from repro.prob.lineage import (
    confidences_from_lineage,
    lineage_by_tuple,
    probabilities_from_answer,
)
from repro.prob.pdb import ProbabilisticDatabase
from repro.prob.ptable import make_tuple_independent
from repro.prob.variables import VariableRegistry, validate_probability
from repro.prob.worlds import confidences_by_enumeration
from repro.storage.relation import Relation
from repro.storage.schema import ColumnRole, Schema


class TestVariableRegistry:
    def test_fresh_allocates_increasing_ids(self):
        registry = VariableRegistry()
        first = registry.fresh("T", 0.5)
        second = registry.fresh("T", 0.25)
        assert second == first + 1
        assert registry.probability(first) == 0.5
        assert registry.table(second) == "T"
        assert len(registry) == 2

    def test_unknown_variable(self):
        with pytest.raises(ProbabilityError):
            VariableRegistry().probability(1)

    def test_probability_validation(self):
        registry = VariableRegistry()
        with pytest.raises(ProbabilityError):
            registry.fresh("T", 0.0)
        with pytest.raises(ProbabilityError):
            registry.fresh("T", 1.5)
        with pytest.raises(ProbabilityError):
            validate_probability("0.5")

    def test_variables_of_and_set_probability(self):
        registry = VariableRegistry()
        a = registry.fresh("A", 0.1)
        registry.fresh("B", 0.2)
        assert registry.variables_of("A") == [a]
        registry.set_probability(a, 0.9)
        assert registry.probability(a) == 0.9


class TestMakeTupleIndependent:
    def test_adds_var_and_prob_columns(self):
        registry = VariableRegistry()
        relation = Relation("T", Schema.of("a:int"), [(1,), (2,)])
        table = make_tuple_independent(relation, registry, probabilities=[0.5, 0.25])
        assert table.schema.names == ("a", "T.V", "T.P")
        assert table.variables() == [1, 2]
        assert table.relation.column("T.P") == [0.5, 0.25]
        assert table.data_rows() == [(1,), (2,)]

    def test_probability_specs(self):
        registry = VariableRegistry()
        relation = Relation("T", Schema.of("a:int"), [(1,), (2,), (3,)])
        constant = make_tuple_independent(relation, registry, probabilities=0.5)
        assert constant.relation.column("T.P") == [0.5, 0.5, 0.5]
        computed = make_tuple_independent(
            relation, registry, probabilities=lambda i, row: 0.1 * (i + 1), source="T2"
        )
        assert computed.relation.column("T2.P") == pytest.approx([0.1, 0.2, 0.3])

    def test_short_probability_list_rejected(self):
        registry = VariableRegistry()
        relation = Relation("T", Schema.of("a:int"), [(1,), (2,)])
        with pytest.raises(ProbabilityError):
            make_tuple_independent(relation, registry, probabilities=[0.5])

    def test_random_probabilities_are_reproducible(self):
        import random

        relation = Relation("T", Schema.of("a:int"), [(i,) for i in range(5)])
        first = make_tuple_independent(relation, VariableRegistry(), rng=random.Random(3))
        second = make_tuple_independent(relation, VariableRegistry(), rng=random.Random(3))
        assert first.relation.column("T.P") == second.relation.column("T.P")

    def test_rejects_existing_annotation(self):
        registry = VariableRegistry()
        relation = Relation("T", Schema.of("a:int"), [(1,)])
        annotated = make_tuple_independent(relation, registry).relation
        with pytest.raises(SchemaError):
            make_tuple_independent(annotated, registry)


class TestProbabilisticDatabase:
    def build(self):
        db = ProbabilisticDatabase("d")
        db.add_table(Relation("R", Schema.of("a:int"), [(1,), (2,)]), probabilities=[0.5, 0.5])
        db.add_table(Relation("S", Schema.of("a:int", "b:int"), [(1, 7)]), probabilities=[0.25])
        return db

    def test_duplicate_table_rejected(self):
        db = self.build()
        with pytest.raises(CatalogError):
            db.add_table(Relation("R", Schema.of("a:int"), [(1,)]))

    def test_world_selection(self):
        db = self.build()
        assignment = {1: True, 2: False, 3: True}
        world = db.world(assignment)
        assert world["R"].rows == [(1,)]
        assert world["S"].rows == [(1, 7)]
        assert db.world_probability(assignment) == pytest.approx(0.5 * 0.5 * 0.25)

    def test_world_probabilities_sum_to_one(self):
        db = self.build()
        total = sum(world.probability for world in db.worlds())
        assert total == pytest.approx(1.0)

    def test_world_enumeration_guard(self):
        db = ProbabilisticDatabase("big")
        db.add_table(Relation("R", Schema.of("a:int"), [(i,) for i in range(30)]))
        with pytest.raises(ProbabilityError):
            list(db.worlds(max_variables=10))

    def test_alias_shares_variables(self):
        db = self.build()
        alias = db.add_alias("R", "R2", rename={"a": "a2"})
        assert alias.schema.names == ("a2", "R2.V", "R2.P")
        assert alias.variables() == db.table("R").variables()
        with pytest.raises(CatalogError):
            db.add_alias("R", "R2")

    def test_confidences_by_enumeration_single_table(self):
        db = self.build()

        def query(instance):
            return instance["R"]

        confidences = confidences_by_enumeration(db, query)
        assert confidences[(1,)] == pytest.approx(0.5)
        assert confidences[(2,)] == pytest.approx(0.5)


class TestLineage:
    def build_answer(self):
        from repro.storage.schema import Attribute

        schema = Schema(
            [
                Attribute("odate", "str"),
                Attribute("Cust.V", "int", ColumnRole.VAR, source="Cust"),
                Attribute("Cust.P", "float", ColumnRole.PROB, source="Cust"),
                Attribute("Item.V", "int", ColumnRole.VAR, source="Item"),
                Attribute("Item.P", "float", ColumnRole.PROB, source="Item"),
            ]
        )
        return Relation(
            "answer",
            schema,
            [
                ("1995-01-10", 1, 0.1, 7, 0.1),
                ("1995-01-10", 1, 0.1, 8, 0.2),
                ("1996-01-09", 2, 0.2, 9, 0.3),
            ],
        )

    def test_lineage_by_tuple(self):
        lineage = lineage_by_tuple(self.build_answer())
        assert lineage[("1995-01-10",)].clauses == frozenset({frozenset({1, 7}), frozenset({1, 8})})
        assert len(lineage[("1996-01-09",)]) == 1

    def test_probabilities_from_answer(self):
        probabilities = probabilities_from_answer(self.build_answer())
        assert probabilities == {1: 0.1, 2: 0.2, 7: 0.1, 8: 0.2, 9: 0.3}

    def test_inconsistent_probability_detected(self):
        answer = self.build_answer()
        answer.append(("1996-01-09", 2, 0.9, 9, 0.3))
        with pytest.raises(ProbabilityError):
            probabilities_from_answer(answer)

    def test_confidences_from_lineage(self):
        confidences = confidences_from_lineage(self.build_answer())
        assert confidences[("1995-01-10",)] == pytest.approx(0.1 * (1 - 0.9 * 0.8))
        assert confidences[("1996-01-09",)] == pytest.approx(0.2 * 0.3)

    @given(st.lists(st.floats(0.01, 0.99), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_single_table_confidence_equals_marginal(self, probabilities):
        db = ProbabilisticDatabase("p")
        rows = [(i,) for i in range(len(probabilities))]
        db.add_table(Relation("R", Schema.of("a:int"), rows), probabilities=probabilities)
        confidences = confidences_from_lineage(db.relation("R"))
        for i, probability in enumerate(probabilities):
            assert confidences[(i,)] == pytest.approx(probability)

"""Tests for the conf() operator semantics (Fig. 5/6) and scan scheduling."""

import pytest

from repro.query.signature import parse_signature
from repro.sprout.conf_operator import apply_semantics, grp_statements, reduce_relation
from repro.sprout.scans import apply_scan_schedule, schedule_scans
from repro.sprout.engine import SproutEngine
from repro.sprout.planner import build_answer_plan, project_answer_columns

from helpers import assert_confidences_close, build_paper_database, paper_query


def paper_answer_relation():
    """Materialised answer of the Introduction's query Q with V/P columns."""
    db = build_paper_database()
    query = paper_query()
    engine = SproutEngine(db)
    plan = build_answer_plan(db, query, engine.planner.lazy_join_order(query))
    return project_answer_columns(plan, query).to_relation("Q")


class TestGrpStatements:
    def test_unrefined_signature_has_five_aggregations_two_propagations(self):
        # Example V.1 / Fig. 6: Q1..Q7.
        statements = grp_statements(parse_signature("(Cust* (Ord* Item*)*)*"))
        assert len(statements) == 7
        assert sum(1 for s in statements if s.startswith("aggregate")) == 5
        assert sum(1 for s in statements if s.startswith("propagate")) == 2

    def test_refined_signature_has_three_aggregations(self):
        statements = grp_statements(parse_signature("(Cust (Ord Item*)*)*"))
        assert sum(1 for s in statements if s.startswith("aggregate")) == 3

    def test_item_is_aggregated_before_ord(self):
        # Fig. 6 evaluates the right part of a concatenation first.
        statements = grp_statements(parse_signature("(Cust* (Ord* Item*)*)*"))
        item_position = next(i for i, s in enumerate(statements) if "Item" in s)
        ord_position = next(i for i, s in enumerate(statements) if "Ord*" in s and "Item" not in s)
        assert item_position < ord_position


class TestApplySemantics:
    @pytest.mark.parametrize(
        "signature_text",
        ["(Cust* (Ord* Item*)*)*", "(Cust (Ord Item*)*)*", "(Cust* (Ord Item*)*)*"],
    )
    def test_paper_example_probability(self, signature_text):
        # Example V.1: the distinct answer tuple has probability 0.0028 under
        # both the unrefined and the FD-refined signatures.
        answer = paper_answer_relation()
        result = apply_semantics(answer, parse_signature(signature_text))
        assert_confidences_close(result.confidences(), {("1995-01-10",): 0.0028})

    def test_steps_are_recorded_with_row_counts(self):
        answer = paper_answer_relation()
        result = apply_semantics(answer, parse_signature("(Cust* (Ord* Item*)*)*"))
        assert result.aggregation_count == 5
        assert result.propagation_count == 2
        assert all(
            step.rows_in >= step.rows_out for step in result.steps if step.kind == "aggregate"
        )

    def test_reduce_relation_keeps_leader_pair(self):
        answer = paper_answer_relation()
        reduced, leader = reduce_relation(answer, parse_signature("(Cust (Ord Item*)*)*"))
        assert leader == "Cust"
        pairs = reduced.schema.var_prob_pairs()
        assert [pair.source for pair in pairs] == ["Cust"]
        assert len(reduced) == 1


class TestScanScheduling:
    def test_refined_signature_needs_single_scan(self):
        schedule = schedule_scans(parse_signature("(Cust (Ord Item*)*)*"))
        assert schedule.total_scans == 1
        assert schedule.pre_aggregations == []

    def test_unrefined_signature_needs_three_scans(self):
        # Example V.11: [Ord*] and [Cust*] first, then the final 1scan pass.
        schedule = schedule_scans(parse_signature("(Cust* (Ord* Item*)*)*"))
        assert schedule.total_scans == 3
        aggregated = [step.aggregated_table for step in schedule.pre_aggregations]
        assert aggregated == ["Ord", "Cust"]
        assert str(schedule.final_signature) == "(Cust (Ord Item*)*)*"
        assert "scan" in schedule.describe()

    def test_composite_pre_aggregation(self):
        schedule = schedule_scans(parse_signature("((R S*)* (U W*)*)*"))
        assert schedule.total_scans == 2
        assert str(schedule.pre_aggregations[0].sub_signature) == "(R S*)*"

    def test_apply_scan_schedule_matches_semantics(self):
        answer = paper_answer_relation()
        for text in ("(Cust* (Ord* Item*)*)*", "(Cust (Ord Item*)*)*"):
            signature = parse_signature(text)
            by_scans, schedule = apply_scan_schedule(answer, signature)
            by_semantics = apply_semantics(answer, signature)
            scans_confidences = {
                tuple(row[:-1]): row[-1] for row in by_scans
            }
            assert_confidences_close(scans_confidences, by_semantics.confidences())
            assert schedule.total_scans >= 1

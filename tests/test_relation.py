"""Unit tests for repro.storage.relation."""

import pytest

from repro.errors import SchemaError
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def people():
    schema = Schema.of("name:str", "age:int", "city:str")
    return Relation(
        "people",
        schema,
        [
            ("ann", 31, "oxford"),
            ("bob", 25, "leeds"),
            ("cat", 25, "oxford"),
            ("ann", 31, "oxford"),
        ],
    )


class TestConstruction:
    def test_len_iter_bool(self, people):
        assert len(people) == 4
        assert bool(people)
        assert list(people)[0] == ("ann", 31, "oxford")
        assert not Relation("empty", people.schema)

    def test_append_arity_check(self, people):
        with pytest.raises(SchemaError):
            people.append(("too", "short"))

    def test_append_validation(self, people):
        with pytest.raises(SchemaError):
            people.append(("x", "not-an-int", "y"), validate=True)

    def test_from_dicts_and_to_dicts(self):
        schema = Schema.of("a:int", "b:str")
        relation = Relation.from_dicts("t", schema, [{"a": 1, "b": "x"}, {"a": 2}])
        assert relation.rows == [(1, "x"), (2, None)]
        assert relation.to_dicts()[0] == {"a": 1, "b": "x"}

    def test_empty_like(self, people):
        empty = people.empty_like("copy")
        assert len(empty) == 0 and empty.schema == people.schema


class TestTransformations:
    def test_column(self, people):
        assert people.column("age") == [31, 25, 25, 31]

    def test_project_is_bag(self, people):
        projected = people.project(["city"])
        assert len(projected) == 4
        assert projected.schema.names == ("city",)

    def test_filter(self, people):
        adults = people.filter(lambda row: row["age"] > 26)
        assert len(adults) == 2

    def test_sorted_by(self, people):
        ordered = people.sorted_by(["age", "name"])
        assert [row[0] for row in ordered] == ["bob", "cat", "ann", "ann"]

    def test_sorted_by_handles_none(self):
        relation = Relation("t", Schema.of("a:int"), [(3,), (None,), (1,)])
        assert relation.sorted_by(["a"]).rows == [(None,), (1,), (3,)]

    def test_distinct(self, people):
        assert len(people.distinct()) == 3

    def test_renamed(self, people):
        renamed = people.renamed({"name": "person"})
        assert renamed.schema.names == ("person", "age", "city")
        assert len(renamed) == 4

    def test_head(self, people):
        assert len(people.head(2)) == 2

    def test_equality_ignores_row_order(self, people):
        shuffled = Relation("other", people.schema, list(reversed(people.rows)))
        assert people == shuffled

    def test_row_dict(self, people):
        assert people.row_dict(people.rows[1])["name"] == "bob"


class TestPretty:
    def test_pretty_contains_header_and_rows(self, people):
        text = people.pretty()
        assert "name" in text and "ann" in text
        assert text.count("\n") >= 4

    def test_pretty_truncates(self, people):
        text = people.pretty(limit=2)
        assert "more rows" in text

"""Integration tests: TPC-H queries end-to-end, all evaluation paths agree.

The exact lineage evaluator (weighted model counting over the answer DNF) is
used as ground truth here; it is itself validated against possible-worlds
enumeration on the small databases of ``test_engine.py``.
"""

import pytest

from repro.errors import UnsafePlanError
from repro.safeplans import MystiqEngine

from repro.tpch.queries import FIGURE9_KEYS, query_A, query_B, query_C, query_D, tpch_query

from helpers import assert_confidences_close

# Building the TPC-H instance and enumerating lineage ground truth dominates
# the default suite's runtime; deselect with `-m "not slow"` for quick loops.
pytestmark = pytest.mark.slow


#: Queries covering every structural case: single table, key joins, FD-reducts,
#: Boolean variants, the nation aliases, and the hand-written A-D queries.
INTEGRATION_KEYS = [
    "1", "3", "B3", "4", "10", "11", "12", "15", "16", "B17", "18", "B18", "20", "7",
]


@pytest.fixture(scope="module")
def lineage_truth(tpch_engine):
    truth = {}
    for key in INTEGRATION_KEYS:
        query = tpch_query(key).query
        truth[key] = tpch_engine.evaluate(query, plan="lineage").confidences()
    return truth


class TestPlanStylesAgree:
    @pytest.mark.parametrize("key", INTEGRATION_KEYS)
    @pytest.mark.parametrize("plan", ["lazy", "eager", "hybrid"])
    def test_sprout_plans(self, tpch_engine, lineage_truth, key, plan):
        query = tpch_query(key).query
        result = tpch_engine.evaluate(query, plan=plan)
        assert_confidences_close(result.confidences(), lineage_truth[key], 1e-7)

    @pytest.mark.parametrize("key", ["3", "10", "15", "16", "B17", "18"])
    def test_mystiq_agrees_where_safe(self, tpch_db, lineage_truth, key):
        engine = MystiqEngine(tpch_db, use_log_aggregation=False, materialize_temporaries=False)
        result = engine.evaluate(tpch_query(key).query)
        assert_confidences_close(result.confidences(), lineage_truth[key], 1e-7)

    @pytest.mark.parametrize("key", ["1", "3", "18"])
    def test_scan_method_matches_semantics_method(self, tpch_engine, key):
        query = tpch_query(key).query
        by_scans = tpch_engine.evaluate(query, conf_method="scans").confidences()
        by_semantics = tpch_engine.evaluate(query, conf_method="semantics").confidences()
        assert_confidences_close(by_scans, by_semantics, 1e-9)

    def test_fds_do_not_change_results(self, tpch_engine):
        for key in ("3", "15", "16"):
            query = tpch_query(key).query
            with_fds = tpch_engine.evaluate(query, use_fds=True).confidences()
            without_fds = tpch_engine.evaluate(query, use_fds=False).confidences()
            assert_confidences_close(with_fds, without_fds, 1e-9)


class TestFigureQueries:
    def test_figure9_queries_run_with_all_engines(self, tpch_db, tpch_engine):
        mystiq = MystiqEngine(tpch_db, use_log_aggregation=False, materialize_temporaries=False)
        for key in FIGURE9_KEYS:
            query = tpch_query(key).query
            lazy = tpch_engine.evaluate(query, plan="lazy")
            eager = tpch_engine.evaluate(query, plan="eager")
            assert_confidences_close(eager.confidences(), lazy.confidences(), 1e-7)
            try:
                safe = mystiq.evaluate(query)
                assert_confidences_close(safe.confidences(), lazy.confidences(), 1e-7)
            except UnsafePlanError:
                pytest.fail(f"Fig. 9 query {key} should admit a MystiQ safe plan")

    def test_hand_written_queries(self, tpch_engine):
        for query in (query_A(2000.0), query_B(100_000.0), query_C(), query_D()):
            lazy = tpch_engine.evaluate(query, plan="lazy")
            eager = tpch_engine.evaluate(query, plan="eager")
            hybrid = tpch_engine.evaluate(query, plan="hybrid")
            assert_confidences_close(eager.confidences(), lazy.confidences(), 1e-7)
            assert_confidences_close(hybrid.confidences(), lazy.confidences(), 1e-7)

    def test_selectivity_sweep_is_monotone(self, tpch_engine):
        # Fig. 11: raising the selection threshold can only add answer tuples.
        sizes = []
        for threshold in (0.0, 2000.0, 6000.0, 10_000.0):
            result = tpch_engine.evaluate(query_A(threshold), plan="lazy")
            sizes.append(result.distinct_tuples)
        assert sizes == sorted(sizes)

    def test_single_scan_for_fd_refined_signatures(self, tpch_engine):
        # Fig. 13: with the TPC-H FDs the operator needs a single scan.
        for key in ("2", "7", "11", "B3"):
            query = tpch_query(key).query
            result = tpch_engine.evaluate(query, plan="lazy", use_fds=True)
            assert result.scans_used == 1

    def test_confidences_are_probabilities(self, tpch_engine):
        for key in INTEGRATION_KEYS:
            query = tpch_query(key).query
            for confidence in tpch_engine.evaluate(query).confidences().values():
                assert 0.0 <= confidence <= 1.0 + 1e-12

"""The parallel confidence executor and its determinism contract.

The headline guarantee: on a fresh engine, ``workers=0`` (in-process),
``workers=1`` and ``workers=4`` (process pools) produce *bit-identical*
results — same tuple sets, same confidences, same bounds, same step counts —
across the differential corpus, for exact and approximate confidence, under
both the row and the columnar backend.  Plus: executor units, round-based
top-k/threshold scheduling, and the regression tests that a worker failure
surfaces a structured :class:`repro.errors.ParallelExecutionError` instead of
hanging the engine.
"""

import os
import time

import pytest

from repro import (
    Atom,
    ConjunctiveQuery,
    PlanningError,
    ProbabilisticDatabase,
    SproutEngine,
)
from repro.errors import ParallelExecutionError, ProbabilityError
from repro.prob import DNF, confidences_by_enumeration
from repro.prob.dtree import canonical_clauses
from repro.sprout import evaluate_deterministic
from repro.sprout.parallel import (
    ConfidenceExecutor,
    ConfidenceTask,
    ParallelRefinementScheduler,
    ProcessExecutor,
    SerialExecutor,
    compute_confidences,
    derive_task_seed,
    partition_tasks,
)
from repro.storage import Relation, Schema

from test_differential_matrix import CORPUS

TOLERANCE = 1e-9
EPSILON = 0.01
WORKER_COUNTS = (0, 1, 4)


def unsafe_chain_query(projection=("a",)):
    return ConjunctiveQuery(
        "chain",
        [Atom("R", ["a", "x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
        projection=list(projection),
    )


@pytest.fixture
def chain_db():
    db = ProbabilisticDatabase("chain-db")
    db.add_table(
        Relation(
            "R",
            Schema.of("a:int", "x:int"),
            [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 1)],
        ),
        probabilities=[0.8, 0.3, 0.6, 0.4, 0.5, 0.7, 0.25],
    )
    db.add_table(
        Relation(
            "S",
            Schema.of("x:int", "y:int"),
            [(0, 0), (0, 1), (1, 1), (2, 0), (2, 1), (1, 0)],
        ),
        probabilities=[0.45, 0.85, 0.3, 0.6, 0.2, 0.75],
    )
    db.add_table(
        Relation("T", Schema.of("y:int"), [(0,), (1,)]), probabilities=[0.9, 0.35]
    )
    return db


def result_fingerprint(result):
    """Everything that must be bit-identical across worker counts."""
    return (
        tuple(result.relation.rows),
        tuple(sorted(result.confidences().items(), key=lambda i: repr(i[0]))),
        tuple(sorted(result.bounds.items(), key=lambda i: repr(i[0]))),
        result.refine_steps,
        result.decided,
    )


# ---------------------------------------------------------------------------
# executor units
# ---------------------------------------------------------------------------


class TestSeedDerivation:
    def test_stable_and_distinct(self):
        clauses_a = canonical_clauses(DNF([[1, 2], [3]]))
        clauses_b = canonical_clauses(DNF([[1, 2], [4]]))
        assert derive_task_seed(7, clauses_a) == derive_task_seed(7, clauses_a)
        assert derive_task_seed(7, clauses_a) != derive_task_seed(7, clauses_b)
        assert derive_task_seed(7, clauses_a) != derive_task_seed(8, clauses_a)
        assert derive_task_seed(None, clauses_a) is None

    def test_canonical_form_is_order_independent(self):
        assert canonical_clauses(DNF([[2, 1], [3]])) == canonical_clauses(
            DNF([[3], [1, 2]])
        )


class TestExecutors:
    def make_tasks(self):
        return [
            ConfidenceTask(
                key=key,
                clauses=canonical_clauses(dnf),
                probabilities={v: 0.1 * (v + 1) for v in dnf.variables()},
            )
            for key, dnf in enumerate(
                [DNF([[0]]), DNF([[0, 1], [1, 2]]), DNF([[3], [4]])]
            )
        ]

    def test_create_dispatch(self):
        assert isinstance(ConfidenceExecutor.create(0), SerialExecutor)
        assert isinstance(ConfidenceExecutor.create(2), ProcessExecutor)
        with pytest.raises(PlanningError):
            ConfidenceExecutor.create(-1)
        with pytest.raises(PlanningError):
            ProcessExecutor(0)

    def test_serial_and_process_agree(self):
        tasks = self.make_tasks()
        serial = SerialExecutor().run(tasks)
        with ProcessExecutor(2) as executor:
            parallel = executor.run(tasks)
        assert [
            (o.key, o.lower, o.upper, o.probability, o.steps, o.exact) for o in serial
        ] == [
            (o.key, o.lower, o.upper, o.probability, o.steps, o.exact) for o in parallel
        ]

    def test_partitioning_is_contiguous_and_complete(self):
        tasks = self.make_tasks() * 4
        partitions = partition_tasks(tasks, 5)
        assert [t.key for p in partitions for t in p] == [t.key for t in tasks]
        assert len(partitions) == 5
        assert max(len(p) for p in partitions) - min(len(p) for p in partitions) <= 1
        assert partition_tasks(tasks, 100) == [[t] for t in tasks]

    def test_missing_probability_is_a_probability_error(self):
        with pytest.raises(ProbabilityError):
            compute_confidences({(1,): DNF([[0, 1]])}, {0: 0.5}, SerialExecutor())


class TestWorkerFailure:
    """A failing or dying worker must surface structured errors, not hang.

    The failures are injected by monkeypatching ``execute_task`` *before*
    the (lazily created) pool exists: the fork start method hands the
    patched module to every worker.
    """

    def healthy_task(self):
        return ConfidenceTask(key=0, clauses=((0,),), probabilities={0: 0.5})

    def test_worker_exception_is_structured(self, monkeypatch):
        import repro.sprout.parallel as parallel

        def explode(task):
            raise RuntimeError(f"injected worker failure for task {task.key}")

        monkeypatch.setattr(parallel, "execute_task", explode)
        with ProcessExecutor(2) as executor:
            outcome = executor.run([self.healthy_task()])[0]
            assert outcome.kind == "error"
            assert "injected worker failure" in outcome.error

    def test_engine_raises_parallel_execution_error(self, chain_db, monkeypatch):
        # Inject the failure at the task layer the engine drives through.
        import repro.sprout.parallel as parallel

        def explode(task):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(parallel, "execute_task", explode)
        engine = SproutEngine(chain_db, workers=0)  # serial backend, same layer
        with pytest.raises(ParallelExecutionError) as caught:
            engine.evaluate(unsafe_chain_query(), plan="dtree")
        assert caught.value.worker_error is not None

    def test_dead_worker_raises_promptly_and_pool_recovers(self, monkeypatch):
        import repro.sprout.parallel as parallel

        original = parallel.execute_task

        def die(task):
            os._exit(3)

        monkeypatch.setattr(parallel, "execute_task", die)
        executor = ProcessExecutor(2)
        try:
            started = time.time()
            with pytest.raises(ParallelExecutionError) as caught:
                executor.run([self.healthy_task()])
            assert time.time() - started < 60, "worker death must not hang"
            assert caught.value.worker_error is not None
            # The broken pool was discarded: with the sabotage removed, the
            # next run forks a fresh pool and works again.
            monkeypatch.setattr(parallel, "execute_task", original)
            outcome = executor.run([self.healthy_task()])[0]
            assert outcome.exact and outcome.probability == pytest.approx(0.5)
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# engine-level differential matrix: workers=0/1/4 bit-identical
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", sorted(CORPUS))
def test_evaluate_bit_identical_across_worker_counts(case):
    """The 6-query corpus, exact and approx, row and batch: same bits."""
    build_db, make_query = CORPUS[case]
    fingerprints = {}
    for workers in WORKER_COUNTS:
        with SproutEngine(build_db(), epsilon=EPSILON, workers=workers) as engine:
            for execution in ("row", "batch"):
                for confidence in ("exact", "approx"):
                    result = engine.evaluate(
                        make_query(),
                        plan="dtree",
                        execution=execution,
                        confidence=confidence,
                    )
                    key = (execution, confidence)
                    fingerprint = result_fingerprint(result)
                    if key in fingerprints:
                        assert fingerprints[key] == fingerprint, (
                            f"{case}/{execution}/{confidence}: workers={workers} "
                            f"diverged from a smaller worker count"
                        )
                    else:
                        fingerprints[key] = fingerprint


@pytest.mark.parametrize("case", sorted(CORPUS))
def test_evaluate_matches_enumeration_in_parallel(case):
    """Parallel results stay pinned to brute-force possible-world truth."""
    build_db, make_query = CORPUS[case]
    truth = confidences_by_enumeration(
        build_db(), lambda instance: evaluate_deterministic(make_query(), instance)
    )
    with SproutEngine(build_db(), epsilon=EPSILON, workers=2) as engine:
        exact = engine.evaluate(make_query(), plan="dtree")
        assert set(exact.confidences()) == set(truth)
        for data, expected in truth.items():
            assert exact.confidences()[data] == pytest.approx(expected, abs=TOLERANCE)
        approx = engine.evaluate(make_query(), plan="dtree", confidence="approx")
        for data, expected in truth.items():
            assert abs(approx.confidences()[data] - expected) <= EPSILON + TOLERANCE
            lower, upper = approx.bounds[data]
            assert lower - TOLERANCE <= expected <= upper + TOLERANCE


# ---------------------------------------------------------------------------
# round-based top-k / threshold
# ---------------------------------------------------------------------------


class TestParallelTopK:
    def enumerate_truth(self, db, query):
        return confidences_by_enumeration(
            db, lambda instance: evaluate_deterministic(query, instance)
        )

    def test_topk_identical_across_pool_sizes(self, chain_db):
        query = unsafe_chain_query()
        fingerprints = []
        for workers in (1, 4):
            with SproutEngine(chain_db, workers=workers) as engine:
                for execution in ("row", "batch"):
                    result = engine.evaluate_topk(query, k=2, execution=execution)
                    assert result.decided
                    fingerprints.append(result_fingerprint(result))
        assert len(set(fingerprints)) == 1

    def test_topk_agrees_with_serial_scheduler_and_truth(self, chain_db):
        query = unsafe_chain_query()
        truth = self.enumerate_truth(chain_db, query)
        with SproutEngine(chain_db, workers=2) as engine:
            parallel = engine.evaluate_topk(query, k=2)
        serial = SproutEngine(chain_db, workers=0).evaluate_topk(query, k=2)
        assert parallel.decided and serial.decided
        assert set(parallel.confidences()) == set(serial.confidences())
        # Exact mode refines the winners all the way, on both routes.
        for data, confidence in parallel.confidences().items():
            assert confidence == pytest.approx(truth[data], abs=TOLERANCE)
        for data, (lower, upper) in parallel.bounds.items():
            assert lower - TOLERANCE <= truth[data] <= upper + TOLERANCE

    def test_threshold_identical_across_pool_sizes(self, chain_db):
        query = unsafe_chain_query()
        truth = self.enumerate_truth(chain_db, query)
        tau = 0.35
        fingerprints = []
        for workers in (1, 4):
            with SproutEngine(chain_db, workers=workers) as engine:
                result = engine.evaluate_threshold(query, tau=tau)
                assert result.decided
                fingerprints.append(result_fingerprint(result))
                selected = set(result.confidences())
                for data, confidence in truth.items():
                    if confidence >= tau + TOLERANCE:
                        assert data in selected
                    elif confidence < tau - TOLERANCE:
                        assert data not in selected
        assert len(set(fingerprints)) == 1

    def test_approx_mode_reports_midpoints_within_bounds(self, chain_db):
        with SproutEngine(chain_db, workers=2) as engine:
            result = engine.evaluate_topk(
                unsafe_chain_query(), k=2, confidence="approx"
            )
        assert result.decided
        for data, confidence in result.confidences().items():
            lower, upper = result.bounds[data]
            assert lower - TOLERANCE <= confidence <= upper + TOLERANCE

    def test_budget_exhaustion_is_reported_not_raised(self, chain_db):
        with SproutEngine(chain_db, workers=2) as engine:
            result = engine.evaluate_topk(
                unsafe_chain_query(), k=1, confidence="approx", max_steps=0
            )
        assert isinstance(result.decided, bool)
        assert result.refine_steps == 0

    def test_shared_parallel_bit_identical_to_serial(self, chain_db):
        """Shared lineage + workers 0/1/4: one decision, bit-for-bit.

        The shared-parallel route ships the whole compiled store segment to
        one worker, which runs the very same ``run_decision`` routine the
        serial route runs — so on fresh engines the *full* fingerprint
        (confidences, bounds, decided sets, and step counts) must match
        exactly, not just the answer sets."""
        query = unsafe_chain_query()
        for confidence in ("exact", "approx"):
            topk_prints = []
            threshold_prints = []
            for workers in WORKER_COUNTS:
                with SproutEngine(
                    chain_db, workers=workers, shared_lineage=True
                ) as engine:
                    top = engine.evaluate_topk(query, k=2, confidence=confidence)
                    assert top.decided
                    topk_prints.append(result_fingerprint(top))
                with SproutEngine(
                    chain_db, workers=workers, shared_lineage=True
                ) as engine:
                    threshold = engine.evaluate_threshold(
                        query, tau=0.35, confidence=confidence
                    )
                    assert threshold.decided
                    threshold_prints.append(result_fingerprint(threshold))
            assert len(set(topk_prints)) == 1, confidence
            assert len(set(threshold_prints)) == 1, confidence

    def test_shared_parallel_budget_exhaustion_is_reported(self, chain_db):
        with SproutEngine(chain_db, workers=2, shared_lineage=True) as engine:
            result = engine.evaluate_topk(
                unsafe_chain_query(), k=1, confidence="approx", max_steps=0
            )
            assert result.refine_steps == 0
        with SproutEngine(chain_db, workers=0, shared_lineage=True) as engine:
            serial = engine.evaluate_topk(
                unsafe_chain_query(), k=1, confidence="approx", max_steps=0
            )
        assert result_fingerprint(result) == result_fingerprint(serial)

    def test_per_tuple_parallel_route_still_selectable(self, chain_db):
        """``shared_lineage=False`` keeps the round-based frontier scheduler
        reachable from the engine (the pre-shared parallel behaviour)."""
        query = unsafe_chain_query()
        fingerprints = []
        for workers in (1, 4):
            with SproutEngine(
                chain_db, workers=workers, shared_lineage=False
            ) as engine:
                result = engine.evaluate_topk(query, k=2)
                assert result.decided
                fingerprints.append(result_fingerprint(result))
        assert len(set(fingerprints)) == 1

    def test_scheduler_validation(self, chain_db):
        scheduler = lambda **kw: ParallelRefinementScheduler(  # noqa: E731
            {(1,): DNF([[0]])}, {0: 0.5}, SerialExecutor(), **kw
        )
        with pytest.raises(PlanningError):
            scheduler(chunk=0)
        with pytest.raises(PlanningError):
            scheduler(frontier=0)
        with pytest.raises(PlanningError):
            scheduler(max_steps=-1)
        with pytest.raises(PlanningError):
            scheduler().run_topk(0)
        with pytest.raises(PlanningError):
            scheduler().run_threshold(1.5)

    def test_k_at_least_population_selects_everything(self):
        scheduler = ParallelRefinementScheduler(
            {(i,): DNF([[i]]) for i in range(3)},
            {i: 0.2 * (i + 1) for i in range(3)},
            SerialExecutor(),
        )
        outcome = scheduler.run_topk(5)
        assert outcome.decided and len(outcome.selected) == 3

    def heavy_lineage(self):
        """Candidates whose path-shaped DNFs need many Shannon cobranches.

        Adjacent clauses share a variable, so nothing decomposes at
        construction and the scheduler must run genuine refinement rounds —
        the regime where warm-vs-cold worker placement once leaked into the
        step accounting.
        """
        lineage = {}
        probabilities = {}
        for index in range(6):
            base = index * 12
            lineage[(index,)] = DNF(
                [[base + j, base + j + 1] for j in range(10)]
            )
            for j in range(12):
                probabilities[base + j] = 0.3 + 0.04 * ((index + j) % 10)
        return lineage, probabilities

    def scheduler_fingerprint(self, outcome):
        return (
            tuple((c.data, c.lower, c.upper, c.steps) for c in outcome.candidates),
            tuple(c.data for c in outcome.selected),
            outcome.decided,
            outcome.steps,
        )

    def test_multi_round_refinement_is_placement_independent(self):
        """Regression: steps/bounds must not depend on which worker was warm.

        Runs the same budget-capped top-k three times on a 4-worker pool and
        once serially; with non-closing trees the pool's task placement
        varies run to run, and every fingerprint (bounds, per-candidate step
        counts, total steps, decidedness) must still be identical.
        """
        lineage, probabilities = self.heavy_lineage()
        fingerprints = set()
        serial = ParallelRefinementScheduler(
            lineage, probabilities, SerialExecutor(), max_steps=600
        ).run_topk(3)
        fingerprints.add(self.scheduler_fingerprint(serial))
        assert serial.steps > 0, "the regression needs real refinement rounds"
        for _ in range(3):
            with ProcessExecutor(4) as executor:
                outcome = ParallelRefinementScheduler(
                    lineage, probabilities, executor, max_steps=600
                ).run_topk(3)
            fingerprints.add(self.scheduler_fingerprint(outcome))
        assert len(fingerprints) == 1, "scheduler diverged across runs/pools"

    def test_identical_lineage_candidates_do_not_alias(self):
        """Regression: two tuples with the same DNF must refine independently.

        The worker tree cache is keyed by candidate, not by clauses: were it
        clause-keyed, the second twin could come back with bounds refined
        past its granted target on whichever worker was warm.
        """
        clauses = [[j, j + 1] for j in range(10)]
        lineage = {("twin_a",): DNF(clauses), ("twin_b",): DNF(clauses)}
        probabilities = {j: 0.4 for j in range(11)}
        fingerprints = set()
        for executor in (SerialExecutor(), ProcessExecutor(2), ProcessExecutor(2)):
            with executor:
                # τ=0.7 sits inside the construction bracket (~[0.58, 0.83]),
                # so both twins must genuinely refine before deciding.
                outcome = ParallelRefinementScheduler(
                    lineage, probabilities, executor, max_steps=64
                ).run_threshold(0.7)
            assert outcome.steps > 0
            fingerprints.add(self.scheduler_fingerprint(outcome))
            twins = {c.data: c for c in outcome.candidates}
            assert (
                twins[("twin_a",)].lower,
                twins[("twin_a",)].upper,
                twins[("twin_a",)].steps,
            ) == (
                twins[("twin_b",)].lower,
                twins[("twin_b",)].upper,
                twins[("twin_b",)].steps,
            ), "identical lineage must yield identical (independent) brackets"
        assert len(fingerprints) == 1


# ---------------------------------------------------------------------------
# engine-level plumbing
# ---------------------------------------------------------------------------


class TestEngineKnobs:
    def test_workers_validation(self, chain_db):
        with pytest.raises(PlanningError):
            SproutEngine(chain_db, workers=-1)
        engine = SproutEngine(chain_db)
        with pytest.raises(PlanningError):
            engine.evaluate(unsafe_chain_query(), workers=-2)

    def test_env_var_default(self, chain_db, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert SproutEngine(chain_db).workers == 3
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert SproutEngine(chain_db).workers == 0
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(PlanningError):
            SproutEngine(chain_db)
        monkeypatch.delenv("REPRO_WORKERS")
        assert SproutEngine(chain_db).workers == 0

    def test_per_call_override_beats_engine_default(self, chain_db):
        with SproutEngine(chain_db, workers=2) as engine:
            serial = engine.evaluate(unsafe_chain_query(), plan="dtree", workers=0)
            pooled = engine.evaluate(unsafe_chain_query(), plan="dtree")
            assert result_fingerprint(serial) == result_fingerprint(pooled)

    def test_close_is_idempotent_and_reentrant(self, chain_db):
        engine = SproutEngine(chain_db, workers=2)
        engine.evaluate(unsafe_chain_query(), plan="dtree")
        engine.close()
        engine.close()
        # An executor is re-created on demand after close().
        engine.evaluate(unsafe_chain_query(), plan="dtree")
        engine.close()

    @pytest.mark.skipif(os.cpu_count() is None, reason="cpu_count unavailable")
    def test_tractable_exact_topk_ignores_workers(self, chain_db):
        safe = ConjunctiveQuery("safe", [Atom("R", ["a", "x"])], projection=["a"])
        with SproutEngine(chain_db, workers=2) as engine:
            result = engine.evaluate_topk(safe, k=2)
        assert result.plan_style == "lazy"
        assert result.refine_steps == 0

"""Unit tests for the catalog: tables, keys, functional dependencies."""

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Catalog, FunctionalDependency
from repro.storage.relation import Relation
from repro.storage.schema import Schema


@pytest.fixture
def catalog():
    catalog = Catalog()
    schema = Schema.of("okey:int", "ckey:int", "odate:date")
    relation = Relation("Ord", schema, [(1, 1, "1995-01-01")])
    catalog.register_table("Ord", schema, relation=relation, primary_key=["okey"])
    return catalog


class TestFunctionalDependency:
    def test_str(self):
        fd = FunctionalDependency("Ord", ["okey"], ["ckey", "odate"])
        assert str(fd) == "Ord: okey -> ckey,odate"

    def test_empty_sides_rejected(self):
        with pytest.raises(CatalogError):
            FunctionalDependency("T", [], ["a"])
        with pytest.raises(CatalogError):
            FunctionalDependency("T", ["a"], [])

    def test_applies_to(self):
        fd = FunctionalDependency("Ord", ["okey"], ["ckey"])
        assert fd.applies_to({"okey", "other"})
        assert not fd.applies_to({"ckey"})

    def test_equality(self):
        assert FunctionalDependency("T", ["a"], ["b"]) == FunctionalDependency("T", ("a",), ("b",))


class TestCatalog:
    def test_register_creates_key_fd(self, catalog):
        fds = catalog.functional_dependencies()
        assert any(fd.determinant == frozenset({"okey"}) for fd in fds)

    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.register_table("Ord", Schema.of("x:int"))

    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("Nope")

    def test_relation_lookup(self, catalog):
        assert len(catalog.relation("Ord")) == 1
        catalog.register_table("Empty", Schema.of("a:int"))
        with pytest.raises(CatalogError):
            catalog.relation("Empty")

    def test_set_relation(self, catalog):
        replacement = Relation("Ord", catalog.table("Ord").schema, [])
        catalog.set_relation("Ord", replacement)
        assert len(catalog.relation("Ord")) == 0

    def test_add_key_and_is_key(self, catalog):
        catalog.add_key("Ord", ["ckey", "odate"])
        assert catalog.is_key("Ord", ["okey"])
        assert catalog.is_key("Ord", ["ckey", "odate", "okey"])
        assert not catalog.is_key("Ord", ["ckey"])
        assert ("ckey", "odate") in catalog.keys_of("Ord")

    def test_fd_filter_by_table(self, catalog):
        catalog.add_fd(FunctionalDependency("Other", ["a"], ["b"]))
        assert all(fd.table == "Ord" for fd in catalog.functional_dependencies(["Ord"]))

    def test_duplicate_fd_ignored(self, catalog):
        before = len(catalog.functional_dependencies())
        catalog.add_fd(FunctionalDependency("Ord", ["okey"], ["ckey", "odate"]))
        catalog.add_fd(FunctionalDependency("Ord", ["okey"], ["ckey", "odate"]))
        assert len(catalog.functional_dependencies()) == before

    def test_describe_mentions_tables_and_fds(self, catalog):
        text = catalog.describe()
        assert "Ord(" in text and "okey -> " in text

    def test_table_names(self, catalog):
        assert catalog.table_names() == ["Ord"]
        assert catalog.has_table("Ord") and not catalog.has_table("X")

"""Multi-lane data-parallel refinement: the concurrency test battery.

PR 9's tentpole contract, pinned from four sides:

* **engine matrix** — top-k/threshold decisions on fresh engines are
  bit-identical (decided sets, confidences, bounds, step counts, and the
  store's raw bound columns) for ``refine_lanes`` 0/1/4, across the
  6-query differential corpus × exact/approx × vectorize on/off;
* **Hypothesis, lane counts** — *any* lane count matches the ``lanes=0``
  fingerprint, not just the ones CI happens to run;
* **Hypothesis, round interleavings** — driving the store primitive
  (:meth:`~repro.prob.sharedag.SharedLineageStore.refine_round`) through
  arbitrary view-subset/width interleavings leaves pooled and inline
  execution in bit-identical states *after every round*, not merely at the
  end;
* **plumbing** — the lane pool preserves order and identity, validation
  rejects nonsense, the ``REPRO_LANES`` knob parses like every other knob,
  and engine/standing-query lifecycles release their pools.

The schedule is planned before any lane runs, so none of these tests need
tolerance windows: every comparison is ``==`` on floats, fingerprint bytes,
and step counters.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SproutEngine
from repro.errors import ConfigurationError, PlanningError
from repro.prob.sharedag import SharedDTree, SharedLineageStore
from repro.sprout.parallel import RefinementLanePool

from test_differential_matrix import CORPUS, _truth
from test_sharedag import lineage_family

LANE_AXIS = (0, 1, 4)


def _tau(case):
    truth = _truth(case)
    return sorted(truth.values())[len(truth) // 2] if truth else 0.5


def _decision_fingerprint(case, confidence, vectorize, lanes):
    """One fresh engine's complete decision state for ``case``, as plain data.

    Covers everything the acceptance criteria name: decided sets (via the
    sorted confidence items), confidences, bounds, per-call step counts —
    plus the shared store's global step meter and its raw IEEE-754 bound
    columns, which subsume every per-tuple bracket.
    """
    build_db, make_query = CORPUS[case]
    engine = SproutEngine(build_db(), vectorize=vectorize, refine_lanes=lanes)
    try:
        top = engine.evaluate_topk(
            make_query(), k=2, plan="dtree", confidence=confidence
        )
        threshold = engine.evaluate_threshold(
            make_query(), tau=_tau(case), plan="dtree", confidence=confidence
        )
        store = engine.dtree_cache.store
        return (
            sorted(top.confidences().items()),
            sorted(top.bounds.items()),
            top.decided,
            top.refine_steps,
            sorted(threshold.confidences().items()),
            sorted(threshold.bounds.items()),
            threshold.decided,
            threshold.refine_steps,
            store.steps,
            store.table.bounds_fingerprint(),
        )
    finally:
        engine.close()


#: lanes=0 fingerprints, computed once per (case, confidence, vectorize) so
#: the lane-axis matrix and the Hypothesis lane sweep share one baseline.
_baseline_cache = {}


def _baseline(case, confidence, vectorize):
    key = (case, confidence, vectorize)
    if key not in _baseline_cache:
        _baseline_cache[key] = _decision_fingerprint(case, confidence, vectorize, 0)
    return _baseline_cache[key]


# ---------------------------------------------------------------------------
# engine matrix: lanes 0/1/4 across the corpus
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", sorted(CORPUS))
@pytest.mark.parametrize("confidence", ["exact", "approx"])
@pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vectorized"])
def test_lane_axis_is_bit_identical(case, confidence, vectorize):
    """refine_lanes 0/1/4 on fresh engines: nothing may move a bit."""
    baseline = _baseline(case, confidence, vectorize)
    for lanes in LANE_AXIS[1:]:
        assert _decision_fingerprint(case, confidence, vectorize, lanes) == baseline, (
            f"{case}/{confidence}/vectorize={vectorize}: "
            f"refine_lanes={lanes} diverged from lanes=0"
        )


# ---------------------------------------------------------------------------
# Hypothesis: any lane count, any round interleaving
# ---------------------------------------------------------------------------


class TestLaneCountProperty:
    @pytest.mark.parametrize("case", sorted(CORPUS))
    @pytest.mark.parametrize("confidence", ["exact", "approx"])
    @given(lanes=st.integers(2, 8), vectorize=st.booleans())
    @settings(max_examples=6, deadline=None)
    def test_any_lane_count_matches_lanes0(self, case, confidence, lanes, vectorize):
        assert (
            _decision_fingerprint(case, confidence, vectorize, lanes)
            == _baseline(case, confidence, vectorize)
        )


class TestRoundInterleavingProperty:
    """The store primitive itself, under arbitrary interleavings.

    Two stores are built from the same lineage family; one executes every
    round inline, the other through a lane pool.  The rounds draw arbitrary
    view subsets (with duplicates — the dedup-by-identity path) and widths,
    and the stores must agree *after every round*: advanced count, global
    step meter, raw bound columns, and each view's bracket and step count.
    """

    @given(lineage_family(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_interleaved_rounds_bit_identical(self, family, data):
        members, probabilities = family

        def build():
            store = SharedLineageStore()
            views = []
            for dnf in members:
                store.add_probabilities(dnf, probabilities)
                views.append(SharedDTree(store, dnf))
            return store, views

        inline_store, inline_views = build()
        pooled_store, pooled_views = build()
        assert (
            inline_store.table.bounds_fingerprint()
            == pooled_store.table.bounds_fingerprint()
        )
        with RefinementLanePool(data.draw(st.integers(2, 4))) as pool:
            for _ in range(data.draw(st.integers(1, 8))):
                chosen = data.draw(
                    st.lists(
                        st.integers(0, len(members) - 1),
                        min_size=1,
                        max_size=2 * len(members),
                    )
                )
                width = data.draw(st.integers(1, 4))
                advanced_inline = inline_store.refine_round(
                    [inline_views[i] for i in chosen], width
                )
                advanced_pooled = pooled_store.refine_round(
                    [pooled_views[i] for i in chosen], width, pool
                )
                assert advanced_inline == advanced_pooled
                assert inline_store.steps == pooled_store.steps
                assert inline_store.node_count == pooled_store.node_count
                assert (
                    inline_store.table.bounds_fingerprint()
                    == pooled_store.table.bounds_fingerprint()
                )
        for inline_view, pooled_view in zip(inline_views, pooled_views):
            assert inline_view.bounds() == pooled_view.bounds()
            assert inline_view.steps == pooled_view.steps

    @given(lineage_family(), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_width1_round_is_the_legacy_primitive(self, family, lanes):
        """refine_most_valuable ≡ refine_round(width=1), pooled or not."""
        members, probabilities = family

        def drain(step):
            store = SharedLineageStore()
            views = []
            for dnf in members:
                store.add_probabilities(dnf, probabilities)
                views.append(SharedDTree(store, dnf))
            while step(store, views):
                pass
            return store.steps, store.table.bounds_fingerprint()

        legacy = drain(lambda store, views: store.refine_most_valuable(views))
        with RefinementLanePool(lanes) as pool:
            pooled = drain(
                lambda store, views: store.refine_round(views, 1, pool)
            )
        assert pooled == legacy


# ---------------------------------------------------------------------------
# standing queries: lanes ride the refresh path
# ---------------------------------------------------------------------------


class TestStandingQueryLanes:
    def _watch(self, lanes):
        build_db, make_query = CORPUS["unsafe_proj"]
        engine = SproutEngine(build_db(), refine_lanes=lanes)
        return engine, engine.watch_topk(make_query(), k=2)

    def test_delta_stream_is_bit_identical(self):
        """A standing query's refreshes and deltas must not see the lane count."""
        baseline_engine, baseline = self._watch(0)
        pooled_engine, pooled = self._watch(3)
        try:
            assert pooled.refine_lanes == 3
            for variable, probability in ((0, 0.9), (5, 0.05), (3, 0.6)):
                baseline.update_probability(variable, probability)
                pooled.update_probability(variable, probability)
                baseline_result = baseline.refresh()
                pooled_result = pooled.refresh()
                assert pooled.selected == baseline.selected
                assert pooled.decided == baseline.decided
                assert pooled.total_steps == baseline.total_steps
                assert pooled.delta_steps == baseline.delta_steps
                assert pooled_result.bounds == baseline_result.bounds
                assert (
                    pooled_result.confidences() == baseline_result.confidences()
                )
        finally:
            baseline.close()
            pooled.close()
            baseline_engine.close()
            pooled_engine.close()

    def test_close_releases_and_recreates_the_pool(self):
        engine, watch = self._watch(2)
        try:
            watch.refresh()
            assert watch._lane_pool is not None
            watch.close()
            assert watch._lane_pool is None
            watch.close()  # idempotent
            watch.refresh()  # lazily recreated
            assert watch._lane_pool is not None
        finally:
            watch.close()
            engine.close()


# ---------------------------------------------------------------------------
# plumbing: the pool, the knobs, the lifecycles
# ---------------------------------------------------------------------------


class TestRefinementLanePool:
    def test_map_preserves_order_and_covers_every_item(self):
        with RefinementLanePool(3) as pool:
            items = list(range(23))
            assert pool.map(lambda x: x * x, items) == [x * x for x in items]
            assert pool.map(len, []) == []
            assert pool.map(str, [7]) == ["7"]

    def test_map_is_reusable_across_calls(self):
        with RefinementLanePool(2) as pool:
            first = pool.map(lambda x: -x, [1, 2, 3])
            second = pool.map(lambda x: -x, [4, 5])
            assert (first, second) == ([-1, -2, -3], [-4, -5])

    def test_rejects_non_positive_lanes(self):
        with pytest.raises(PlanningError):
            RefinementLanePool(0)

    def test_worker_exception_propagates(self):
        with RefinementLanePool(2) as pool:
            with pytest.raises(ZeroDivisionError):
                pool.map(lambda x: 1 // x, [1, 1, 0, 1])


class TestLaneKnobs:
    def test_engine_rejects_negative_lanes(self):
        build_db, _ = CORPUS["single"]
        with pytest.raises(PlanningError):
            SproutEngine(build_db(), refine_lanes=-1)

    def test_env_default(self, monkeypatch):
        build_db, _ = CORPUS["single"]
        monkeypatch.setenv("REPRO_LANES", "3")
        engine = SproutEngine(build_db())
        assert engine.refine_lanes == 3
        engine.close()
        monkeypatch.delenv("REPRO_LANES")
        engine = SproutEngine(build_db())
        assert engine.refine_lanes == 0
        engine.close()

    @pytest.mark.parametrize("value", ["two", "-1", "1.5"])
    def test_malformed_env_raises_configuration_error(self, monkeypatch, value):
        build_db, _ = CORPUS["single"]
        monkeypatch.setenv("REPRO_LANES", value)
        with pytest.raises(ConfigurationError):
            SproutEngine(build_db())

    def test_engine_close_releases_the_pool(self):
        build_db, make_query = CORPUS["unsafe_bool"]
        engine = SproutEngine(build_db(), refine_lanes=2)
        engine.evaluate_topk(make_query(), k=1, plan="dtree")
        pool = engine._lane_pool
        assert pool is not None
        inner = pool._pool  # the supervised wrapper's live RefinementLanePool
        assert inner is not None
        engine.close()
        assert engine._lane_pool is None
        assert pool._pool is None  # supervision discarded the inner pool...
        assert inner._executor._shutdown  # ...and its threads are released

    def test_explicit_argument_beats_the_env(self, monkeypatch):
        build_db, _ = CORPUS["single"]
        monkeypatch.setenv("REPRO_LANES", "5")
        engine = SproutEngine(build_db(), refine_lanes=1)
        assert engine.refine_lanes == 1
        engine.close()

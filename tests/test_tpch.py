"""Tests for the TPC-H substrate: generator, schema, queries, case study."""

import pytest


from repro.tpch.casestudy import case_study_table, classify_all, classify_query
from repro.tpch.datagen import MKT_SEGMENTS, NATIONS, REGIONS, generate_tpch
from repro.tpch.probabilistic import make_probabilistic_tpch
from repro.tpch.queries import (
    FIGURE10_KEYS,
    FIGURE13_KEYS,
    FIGURE9_KEYS,
    all_query_keys,
    excluded_query_keys,
    query_A,
    query_B,
    query_C,
    query_D,
    tpch_query,
)
from repro.tpch.schema import TPCH_TABLES, tpch_functional_dependencies, tpch_keys, tpch_schema


class TestDataGenerator:
    def test_cardinality_ratios(self):
        data = generate_tpch(scale_factor=0.001, seed=1)
        counts = data.row_counts()
        assert counts["region"] == 5 and counts["nation"] == 25
        assert counts["supplier"] == 10
        assert counts["customer"] == 150
        assert counts["part"] == 200
        assert counts["partsupp"] == 800
        assert counts["orders"] == 1500
        # one to seven lineitems per order
        assert counts["orders"] <= counts["lineitem"] <= 7 * counts["orders"]

    def test_determinism(self):
        first = generate_tpch(scale_factor=0.0005, seed=42)
        second = generate_tpch(scale_factor=0.0005, seed=42)
        for name in TPCH_TABLES:
            assert first[name].rows == second[name].rows
        different = generate_tpch(scale_factor=0.0005, seed=43)
        assert different["orders"].rows != first["orders"].rows

    def test_primary_keys_are_unique(self):
        data = generate_tpch(scale_factor=0.0005, seed=3)
        for name, key in tpch_keys().items():
            relation = data[name]
            indices = relation.schema.indices_of(key)
            values = [tuple(row[i] for i in indices) for row in relation]
            assert len(values) == len(set(values)), f"duplicate key in {name}"

    def test_foreign_key_integrity(self):
        data = generate_tpch(scale_factor=0.0005, seed=3)
        order_keys = set(data["orders"].column("orderkey"))
        customer_keys = set(data["customer"].column("custkey"))
        supplier_keys = set(data["supplier"].column("suppkey"))
        part_keys = set(data["part"].column("partkey"))
        assert set(data["orders"].column("custkey")) <= customer_keys
        assert set(data["lineitem"].column("orderkey")) <= order_keys
        assert set(data["lineitem"].column("suppkey")) <= supplier_keys
        assert set(data["lineitem"].column("partkey")) <= part_keys
        assert set(data["partsupp"].column("suppkey")) <= supplier_keys

    def test_value_domains(self):
        data = generate_tpch(scale_factor=0.0005, seed=3)
        assert set(data["customer"].column("c_mktsegment")) <= set(MKT_SEGMENTS)
        assert set(data["nation"].column("n_name")) == {name for name, _ in NATIONS}
        assert set(data["region"].column("r_name")) == set(REGIONS)
        for date in data["orders"].column("o_orderdate"):
            assert "1992-01-01" <= date <= "1998-12-28"

    def test_every_nation_has_customers_at_small_scale(self):
        data = generate_tpch(scale_factor=0.001, seed=3)
        assert set(data["customer"].column("c_nationkey")) == set(range(25))


class TestProbabilisticTpch:
    def test_tables_and_aliases_registered(self, tpch_db):
        names = set(tpch_db.table_names())
        assert set(TPCH_TABLES) <= names
        assert {"nation_s", "nation_c"} <= names

    def test_aliases_share_variables(self, tpch_db):
        assert tpch_db.table("nation_s").variables() == tpch_db.table("nation").variables()
        assert "s_nationkey" in tpch_db.table("nation_s").schema.names

    def test_probabilities_in_range(self, tpch_db):
        for probability in tpch_db.probabilities().values():
            assert 0 < probability <= 1

    def test_uniform_probability_option(self):
        data = generate_tpch(scale_factor=0.0002, seed=5)
        db = make_probabilistic_tpch(data, uniform_probability=0.5)
        assert set(db.probabilities().values()) == {0.5}

    def test_keys_registered_as_fds(self, tpch_db):
        fds = tpch_db.catalog.functional_dependencies(["orders"])
        assert any(fd.determinant == frozenset({"orderkey"}) for fd in fds)


class TestQueryRegistry:
    def test_all_22_queries_registered(self):
        keys = all_query_keys()
        for number in range(1, 23):
            assert str(number) in keys

    def test_figure_lists_are_registered(self):
        for key in FIGURE9_KEYS + FIGURE10_KEYS + FIGURE13_KEYS:
            assert tpch_query(key) is not None

    def test_excluded_queries(self):
        excluded = set(excluded_query_keys())
        assert {"5", "8", "9", "13", "22"} <= excluded
        assert not (excluded & set(FIGURE9_KEYS))
        assert not (excluded & set(FIGURE10_KEYS))

    def test_boolean_variants_are_boolean(self):
        for key in all_query_keys():
            if key.startswith("B"):
                assert tpch_query(key).query.is_boolean()

    def test_unknown_key_raises(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            tpch_query("99")

    def test_parameterised_queries(self):
        assert query_A(1000.0).selections.value == 1000.0
        assert "o_totalprice" in str(query_B(5000.0))
        assert query_C().table_names() == ["customer", "orders", "lineitem"]
        assert query_D().projection == ("s_nationkey",)


class TestCaseStudy:
    def test_selected_classifications(self):
        fds = tpch_functional_dependencies()
        # Query 3 (okey in the projection) is hierarchical outright.
        assert classify_query(tpch_query("3"), fds).hierarchical_without_fds
        # Its Boolean variant needs the orderkey -> custkey FD.
        b3 = classify_query(tpch_query("B3"), fds)
        assert not b3.hierarchical_without_fds and b3.hierarchical_with_fds
        # Query 18 needs FDs as well (Section VI).
        q18 = classify_query(tpch_query("18"), fds)
        assert not q18.hierarchical_without_fds and q18.hierarchical_with_fds
        # Queries 5/8/9 stay intractable.
        for key in ("5", "8", "9"):
            classification = classify_query(tpch_query(key), fds)
            assert not classification.hierarchical_with_fds

    def test_every_figure_query_is_tractable(self):
        classifications = classify_all()
        for key in FIGURE9_KEYS + FIGURE10_KEYS + FIGURE13_KEYS:
            assert classifications[key].tractable, key

    def test_case_study_table_renders(self):
        text = case_study_table()
        assert "query" in text and "signature" in text and "paper (Section VI)" in text

    def test_signature_examples(self):
        classifications = classify_all()
        assert "lineitem*" in classifications["B17"].signature
        assert classifications["18"].scans == 1


class TestSchemaHelpers:
    def test_schema_lookup(self):
        assert "orderkey" in tpch_schema("orders").names
        assert tpch_keys()["lineitem"] == ("orderkey", "l_linenumber")

    def test_functional_dependencies_cover_candidate_keys(self):
        fds = tpch_functional_dependencies()
        assert any(fd.determinant == frozenset({"s_name"}) for fd in fds)
        assert any(fd.table == "nation_c" for fd in fds)

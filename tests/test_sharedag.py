"""The shared-lineage DAG: hash-consing, shared refinement, views, eviction.

Unit tests pin the structural guarantees (dedup idempotence, DTree-compatible
surface, cache statistics); Hypothesis properties assert, on random families
of overlapping lineages, that (a) interning is idempotent, (b) bounds of
*every* view tighten monotonically no matter which view performs the
refinement and always bracket brute-force enumeration truth, (c) the exact
probability a view compiles to is bit-identical to the per-tuple
:class:`repro.prob.dtree.DTree`'s, and (d) views survive cache eviction
fully functional (eviction only forgets sharing, never correctness).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProbabilityError
from repro.prob.dtree import DTree, refine_to_budget
from repro.prob.formulas import DNF, dnf_probability_enumeration
from repro.prob.sharedag import (
    ClauseInterner,
    SharedDTree,
    SharedDTreeCache,
    SharedLineageStore,
)
from repro.sprout import RefinementScheduler, TupleCandidate

TOLERANCE = 1e-9


def exact_value(dnf, probabilities):
    """The per-tuple d-tree's exact probability (the bit-level reference)."""
    tree = DTree(dnf, probabilities)
    return refine_to_budget(tree, epsilon=0.0, max_steps=None).probability


# ---------------------------------------------------------------------------
# strategies: families of lineages sharing clause blocks
# ---------------------------------------------------------------------------


@st.composite
def lineage_family(draw):
    """2–4 DNFs drawing clauses from one shared pool (≤ 10 variables)."""
    nvars = draw(st.integers(4, 10))
    probability = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
    probabilities = {v: draw(probability) for v in range(nvars)}
    clause = st.sets(st.integers(0, nvars - 1), min_size=1, max_size=3).map(frozenset)
    pool = draw(st.lists(clause, min_size=2, max_size=6, unique=True))
    members = []
    for _ in range(draw(st.integers(2, 4))):
        shared = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=len(pool), unique=True)
        )
        private = draw(st.lists(clause, min_size=0, max_size=3))
        members.append(DNF(shared + private))
    return members, probabilities


# ---------------------------------------------------------------------------
# interner
# ---------------------------------------------------------------------------


class TestClauseInterner:
    def test_interning_shares_one_object_per_clause(self):
        interner = ClauseInterner()
        first = interner.intern([3, 1, 2])
        second = interner.intern((2, 3, 1))
        assert first is second
        assert len(interner) == 1

    def test_ids_are_dense_and_stable(self):
        interner = ClauseInterner()
        a = interner.id_of([1, 2])
        b = interner.id_of([3])
        assert (a, b) == (0, 1)
        assert interner.id_of([2, 1]) == 0
        assert interner.id_of([3]) == 1


# ---------------------------------------------------------------------------
# store: hash-consed construction
# ---------------------------------------------------------------------------


class TestStoreDedup:
    def probabilities(self):
        return {v: 0.1 * (v + 1) for v in range(8)}

    def test_same_clause_set_is_one_node(self):
        store = SharedLineageStore()
        dnf = DNF([[0, 1], [1, 2]])
        store.add_probabilities(dnf, self.probabilities())
        first = store.build_root(dnf)
        count = store.node_count
        second = store.build_root(DNF([[2, 1], [1, 0]]))
        assert first == second
        assert store.node_count == count  # dedup is free

    def test_minimisation_equivalent_roots_share(self):
        store = SharedLineageStore()
        probabilities = self.probabilities()
        a = DNF([[0, 1], [1, 2]])
        b = DNF([[0, 1], [1, 2], [0, 1, 2]])  # subsumed third clause
        store.add_probabilities(b, probabilities)
        assert store.build_root(a) == store.build_root(b)

    def test_probability_space_is_guarded(self):
        store = SharedLineageStore()
        store.add_probabilities(DNF([[0, 1]]), {0: 0.5, 1: 0.5})
        with pytest.raises(ProbabilityError):
            store.add_probabilities(DNF([[1, 2]]), {1: 0.9, 2: 0.5})
        with pytest.raises(ProbabilityError):
            store.add_probabilities(DNF([[3]]), {})

    def test_view_requires_probabilities_upfront(self):
        # DTree call-compatibility: a missing marginal is a structured
        # ProbabilityError at construction, never a KeyError from build().
        store = SharedLineageStore()
        store.add_probabilities(DNF([[0, 1]]), {0: 0.5, 1: 0.5})
        with pytest.raises(ProbabilityError):
            SharedDTree(store, DNF([[0, 2]]))

    def test_expand_requires_a_leaf(self):
        store = SharedLineageStore()
        dnf = DNF([[0]])
        store.add_probabilities(dnf, {0: 0.5})
        with pytest.raises(ProbabilityError):
            store.expand_leaf(store.build_root(dnf))

    @given(lineage_family())
    @settings(max_examples=40, deadline=None)
    def test_dedup_is_idempotent(self, family):
        members, probabilities = family
        store = SharedLineageStore()
        for dnf in members:
            store.add_probabilities(dnf, probabilities)
        roots = [store.build_root(dnf) for dnf in members]
        count = store.node_count
        again = [store.build_root(dnf) for dnf in members]
        assert all(a == b for a, b in zip(roots, again))
        assert store.node_count == count


# ---------------------------------------------------------------------------
# shared refinement: monotone, sound, bit-identical at closure
# ---------------------------------------------------------------------------


class TestSharedRefinement:
    @given(lineage_family(), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_bounds_monotone_and_sound_under_any_interleaving(self, family, rng):
        members, probabilities = family
        cache = SharedDTreeCache()
        views = [cache.get(dnf, probabilities) for dnf in members]
        truths = [dnf_probability_enumeration(dnf, probabilities) for dnf in members]
        brackets = [view.bounds() for view in views]
        for truth, (lower, upper) in zip(truths, brackets):
            assert lower - TOLERANCE <= truth <= upper + TOLERANCE
        for _ in range(60):
            view = rng.choice(views)
            if not view.expand_once():
                continue
            for index, other in enumerate(views):
                lower, upper = other.bounds()
                old_lower, old_upper = brackets[index]
                assert lower >= old_lower - 1e-12, "lower bound widened"
                assert upper <= old_upper + 1e-12, "upper bound widened"
                assert lower - TOLERANCE <= truths[index] <= upper + TOLERANCE
                brackets[index] = (lower, upper)

    @given(lineage_family())
    @settings(max_examples=40, deadline=None)
    def test_exact_closure_is_bit_identical_to_dtree(self, family):
        members, probabilities = family
        cache = SharedDTreeCache()
        for dnf in members:
            view = cache.get(dnf, probabilities)
            view.refine(None)
            assert view.is_exact
            assert view.result().probability == exact_value(dnf, probabilities)

    def test_refinement_through_one_view_serves_the_other(self):
        probabilities = {v: 0.4 for v in range(12)}
        # a and b share the variable-disjoint clause block `common`, so both
        # roots decompose into an ⊕ over components and the `common`
        # component is one shared node under both.
        common = [[0, 1], [1, 2], [2, 3]]
        a = DNF(common + [[4, 5], [5, 6], [6, 7]])
        b = DNF(common + [[8, 9], [9, 10], [10, 11]])
        cache = SharedDTreeCache()
        view_a = cache.get(a, probabilities)
        view_b = cache.get(b, probabilities)
        before = view_b.bounds()
        view_a.refine(None)  # compile a to exactness through view a only
        assert view_a.is_exact
        # Closing the shared component under a tightened b's root bracket
        # without b spending a single step of its own.
        after = view_b.bounds()
        assert view_b.steps == 0
        assert after[1] - after[0] < before[1] - before[0]
        spent = view_b.refine(None)
        assert view_b.is_exact
        assert view_b.result().probability == exact_value(b, probabilities)
        # ... and b needed fewer expansions than a cold compilation takes.
        cold = DTree(b, probabilities)
        refine_to_budget(cold, epsilon=0.0, max_steps=None)
        assert spent < cold.steps

    def test_refine_most_valuable_drives_views_to_closure(self):
        probabilities = {v: 0.35 + 0.05 * (v % 5) for v in range(12)}
        members = [
            DNF([[i, i + 1] for i in range(0, 6)]),
            DNF([[i, i + 1] for i in range(3, 9)]),
            DNF([[i, i + 1] for i in range(6, 11)]),
        ]
        cache = SharedDTreeCache()
        views = [cache.get(dnf, probabilities) for dnf in members]
        store = cache.store
        performed = 0
        while any(not view.is_exact for view in views) and performed < 10_000:
            gating = [view for view in views if not view.is_exact]
            advanced = store.refine_most_valuable(gating)
            assert advanced == 1, "open views must always yield an expansion"
            performed += advanced
        assert performed == store.steps
        for dnf, view in zip(members, views):
            assert view.result().probability == exact_value(dnf, probabilities)
        assert store.refine_most_valuable(views) == 0  # everything closed


# ---------------------------------------------------------------------------
# cache: statistics, LRU, node-count eviction, view isolation
# ---------------------------------------------------------------------------


class TestSharedDTreeCache:
    def test_hit_returns_the_same_view(self):
        cache = SharedDTreeCache()
        probabilities = {v: 0.5 for v in range(4)}
        dnf = DNF([[0, 1], [1, 2], [2, 3]])
        first = cache.get(dnf, probabilities)
        second = cache.get(DNF([[2, 3], [1, 2], [0, 1]]), probabilities)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_max_entries_is_lru(self):
        cache = SharedDTreeCache(max_entries=2)
        probabilities = {v: 0.5 for v in range(9)}
        for start in (0, 3, 6):
            cache.get(DNF([[start, start + 1], [start + 1, start + 2]]), probabilities)
        assert len(cache) == 2

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            SharedDTreeCache(max_entries=0)
        with pytest.raises(ProbabilityError):
            SharedDTreeCache(max_nodes=0)

    def test_clear_resets_everything(self):
        cache = SharedDTreeCache()
        cache.get(DNF([[0, 1]]), {0: 0.5, 1: 0.5})
        cache.clear()
        assert len(cache) == 0 and cache.misses == 0
        assert cache.store.node_count == 0
        cache.get(DNF([[0, 1]]), {0: 0.9, 1: 0.5})  # new space is fine now

    @given(lineage_family())
    @settings(max_examples=40, deadline=None)
    def test_views_stay_isolated_and_correct_after_eviction(self, family):
        members, probabilities = family
        # A node budget small enough that every build overflows it: the
        # store's intern table is reset between gets, so each view loses all
        # sharing with the others — and must still be exactly correct.
        cache = SharedDTreeCache(max_nodes=1)
        views = [cache.get(dnf, probabilities) for dnf in members]
        for dnf, view in zip(members, views):
            spent = view.refine(None)
            assert spent >= 0 and view.is_exact
            assert view.result().probability == exact_value(dnf, probabilities)

    def test_eviction_resets_the_interner_too(self):
        # Regression: the clause interner grows with every distinct clause
        # ever extracted, so the node-budget reset must drop it alongside
        # the intern table or engine memory would not actually be bounded.
        probabilities = {v: 0.45 for v in range(7)}
        cache = SharedDTreeCache(max_nodes=1)
        cache.interner.intern([0, 1])
        before = cache.interner
        # Two independent components: ⊕ root + two closed children = 3
        # interned nodes, overflowing the 1-node budget for the next get.
        cache.get(DNF([[0, 1], [2, 3]]), probabilities)
        assert cache.store.node_count > 1
        cache.get(DNF([[4, 5]]), probabilities)  # triggers the reset
        assert cache.interner is not before
        assert len(cache.interner) == 0

    def test_eviction_forgets_sharing_but_not_live_refinement(self):
        probabilities = {v: 0.45 for v in range(12)}
        # Four chain components: construction alone makes ⊕ + 4 open leaves
        # = 5 interned nodes, overflowing the 4-node budget at the next get.
        dnf = DNF([[i, i + 1] for i in range(0, 11, 3)] + [[i + 1, i + 2] for i in range(0, 11, 3)])
        cache = SharedDTreeCache(max_nodes=4)
        view = cache.get(dnf, probabilities)
        assert cache.store.node_count > 4
        cache.get(DNF([[0, 1]]), probabilities)  # triggers reset + view clear
        fresh = cache.get(dnf, probabilities)  # rebuilt: the view table was reset
        assert fresh is not view
        view.refine(None)
        fresh.refine(None)
        assert view.result().probability == fresh.result().probability
        assert view.result().probability == exact_value(dnf, probabilities)

    def test_node_budget_bounds_the_table_during_refinement(self):
        # Regression: one giant compilation must not grow the intern table
        # arbitrarily far past the budget between cache accesses — the store
        # enforces it after every expansion.
        probabilities = {v: 0.45 for v in range(20)}
        dnf = DNF([[i, i + 1] for i in range(19)])
        cache = SharedDTreeCache(max_nodes=8)
        view = cache.get(dnf, probabilities)
        view.refine(None)
        assert view.is_exact
        assert view.result().probability == exact_value(dnf, probabilities)
        # Far more than 8 nodes were created along the way; the table was
        # reset whenever an expansion overflowed it, so the retained table
        # ends within budget (the expansion check is the last node-creating
        # operation of the refinement).
        assert len(cache.store.table) > 8
        assert len(cache.store._nodes) <= 8


# ---------------------------------------------------------------------------
# scheduler integration: shared mode decides the same sets
# ---------------------------------------------------------------------------


class TestSharedScheduling:
    def build_candidates(self, members, probabilities, shared):
        if shared:
            cache = SharedDTreeCache()
            return [
                TupleCandidate((index,), tree=cache.get(dnf, probabilities))
                for index, dnf in enumerate(members)
            ], cache.store
        return [
            TupleCandidate((index,), tree=DTree(dnf, probabilities))
            for index, dnf in enumerate(members)
        ], None

    @given(lineage_family(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_topk_selects_the_same_set_as_per_tuple_mode(self, family, k):
        members, probabilities = family
        truths = {
            (index,): dnf_probability_enumeration(dnf, probabilities)
            for index, dnf in enumerate(members)
        }
        selections = {}
        steps = {}
        for shared in (False, True):
            candidates, store = self.build_candidates(members, probabilities, shared)
            outcome = RefinementScheduler(candidates, store=store).run_topk(k)
            assert outcome.decided
            selections[shared] = {c.data for c in outcome.selected}
            steps[shared] = outcome.steps
            for candidate in outcome.candidates:
                truth = truths[candidate.data]
                assert candidate.lower - TOLERANCE <= truth <= candidate.upper + TOLERANCE
        assert selections[False] == selections[True]

    @given(lineage_family(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=40, deadline=None)
    def test_threshold_partitions_identically(self, family, tau):
        members, probabilities = family
        truths = {
            (index,): dnf_probability_enumeration(dnf, probabilities)
            for index, dnf in enumerate(members)
        }
        for shared in (False, True):
            candidates, store = self.build_candidates(members, probabilities, shared)
            outcome = RefinementScheduler(candidates, store=store).run_threshold(tau)
            assert outcome.decided
            selected = {c.data for c in outcome.selected}
            for data, truth in truths.items():
                if truth >= tau + TOLERANCE:
                    assert data in selected
                elif truth < tau - TOLERANCE:
                    assert data not in selected

    def test_shared_budget_exhaustion_reports_undecided(self):
        probabilities = {v: 0.5 for v in range(20)}
        members = [
            DNF([[i, i + 1] for i in range(0, 8)]),
            DNF([[i, i + 1] for i in range(10, 18)]),
        ]
        candidates, store = self.build_candidates(members, probabilities, True)
        outcome = RefinementScheduler(candidates, max_steps=0, store=store).run_topk(1)
        assert not outcome.decided
        assert outcome.steps == 0

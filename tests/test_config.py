"""The shared environment-knob parser and the engines' use of it.

Every ``REPRO_*`` knob goes through :mod:`repro.config`, so a malformed
value raises the same documented :class:`repro.errors.ConfigurationError`
everywhere — which is both a :class:`ValueError` (the documented contract)
and a :class:`repro.errors.PlanningError` (what engine callers catch).
"""

import pytest

from repro import ProbabilisticDatabase, SproutEngine
from repro.config import env_flag, env_int
from repro.errors import ConfigurationError, PlanningError
from repro.prob.backend import default_vectorize
from repro.storage import Relation, Schema


@pytest.fixture
def tiny_db():
    db = ProbabilisticDatabase("tiny")
    db.add_table(Relation("R", Schema.of("a:int"), [(1,)]), probabilities=[0.5])
    return db


class TestEnvFlag:
    def test_unset_and_empty_use_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is None
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "")
        assert env_flag("REPRO_TEST_FLAG", default=False) is False

    @pytest.mark.parametrize("value", ("1", "true", "YES", "On"))
    def test_truthy_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG") is True

    @pytest.mark.parametrize("value", ("0", "false", "NO", "Off"))
    def test_falsy_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG", default=True) is False

    def test_malformed_raises_the_documented_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "maybe")
        with pytest.raises(ConfigurationError) as excinfo:
            env_flag("REPRO_TEST_FLAG")
        assert "REPRO_TEST_FLAG" in str(excinfo.value)
        assert "'maybe'" in str(excinfo.value)
        # The dual contract: a ValueError for library users, a PlanningError
        # for everything that already catches engine configuration failures.
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, PlanningError)


class TestEnvInt:
    def test_unset_uses_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT") is None
        assert env_int("REPRO_TEST_INT", default=7) == 7

    def test_parses_and_checks_the_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "12")
        assert env_int("REPRO_TEST_INT", minimum=0) == 12
        monkeypatch.setenv("REPRO_TEST_INT", "-3")
        with pytest.raises(ConfigurationError):
            env_int("REPRO_TEST_INT", minimum=0)

    @pytest.mark.parametrize("value", ("many", "3.5", "0x10"))
    def test_malformed_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_INT", value)
        with pytest.raises(ConfigurationError) as excinfo:
            env_int("REPRO_TEST_INT", minimum=0)
        assert "REPRO_TEST_INT" in str(excinfo.value)


class TestEngineKnobsThroughTheSharedParser:
    def test_malformed_workers_rejected_at_construction(self, tiny_db, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "a few")
        with pytest.raises(ConfigurationError):
            SproutEngine(tiny_db)

    def test_malformed_dtree_cache_rejected(self, tiny_db, monkeypatch):
        monkeypatch.setenv("REPRO_DTREE_CACHE", "0")
        with pytest.raises(ConfigurationError):
            SproutEngine(tiny_db)

    def test_malformed_shared_lineage_rejected(self, tiny_db, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_LINEAGE", "sometimes")
        with pytest.raises(ConfigurationError):
            SproutEngine(tiny_db)

    def test_malformed_vectorize_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTORIZE", "fast")
        with pytest.raises(ConfigurationError):
            default_vectorize()

    def test_well_formed_knobs_still_apply(self, tiny_db, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        monkeypatch.setenv("REPRO_DTREE_CACHE", "123")
        monkeypatch.setenv("REPRO_SHARED_LINEAGE", "1")
        engine = SproutEngine(tiny_db)
        assert engine.workers == 0
        assert engine.dtree_cache_size == 123
        assert engine.shared_lineage is True

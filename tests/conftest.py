"""Shared fixtures: the paper's running example and a tiny TPC-H instance.

The reusable helper functions (:func:`build_paper_database`,
:func:`paper_query`, :func:`assert_confidences_close`) live in
``tests/helpers.py`` so that test modules can import them by a unique module
name instead of the ambiguous ``conftest`` (which clashes with
``benchmarks/conftest.py``).
"""

from __future__ import annotations

import pytest

from helpers import build_paper_database, paper_query

from repro import ConjunctiveQuery, ProbabilisticDatabase, SproutEngine


@pytest.fixture
def paper_db() -> ProbabilisticDatabase:
    return build_paper_database()


@pytest.fixture
def paper_q() -> ConjunctiveQuery:
    return paper_query()


@pytest.fixture
def paper_engine(paper_db) -> SproutEngine:
    return SproutEngine(paper_db)


@pytest.fixture(scope="session")
def tpch_db():
    """A tiny probabilistic TPC-H instance shared by the integration tests."""
    from repro.tpch import probabilistic_tpch

    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


@pytest.fixture(scope="session")
def tpch_engine(tpch_db) -> SproutEngine:
    return SproutEngine(tpch_db)

"""Tests for the scan-based confidence operator (Fig. 8)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProbabilityError, QueryError
from repro.prob.formulas import DNF, dnf_probability
from repro.query.signature import parse_signature
from repro.sprout.onescan import (
    ColumnMap,
    OneScanState,
    group_probability,
    one_scan_operator,
    scan_confidences,
    sort_column_order,
    streaming_scan_confidences,
)
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, ColumnRole, Schema


def bag_schema(tables, data_columns=("d",)):
    """Schema of an answer relation with one V/P pair per table."""
    attributes = [Attribute(name, "str") for name in data_columns]
    for table in tables:
        attributes.append(Attribute(f"{table}.V", "int", ColumnRole.VAR, source=table))
        attributes.append(Attribute(f"{table}.P", "float", ColumnRole.PROB, source=table))
    return Schema(attributes)


def make_relation(tables, rows, data_columns=("d",)):
    return Relation("answer", bag_schema(tables, data_columns), rows)


def bag_dnf(rows, columns: ColumnMap):
    """DNF and probability map encoded by a bag of answer rows."""
    probabilities = {}
    clauses = []
    for row in rows:
        clause = []
        for table in columns.tables():
            variable = columns.var_of(row, table)
            probabilities[variable] = columns.prob_of(row, table)
            clause.append(variable)
        clauses.append(clause)
    return DNF(clauses), probabilities


class TestGroupProbability:
    def test_paper_bag(self):
        # x1 y1 z1 ∨ x1 y1 z2 factored as x1(y1(z1 ∨ z2)) = 0.0028.
        relation = make_relation(
            ["Cust", "Ord", "Item"],
            [
                ("1995-01-10", 1, 0.1, 5, 0.1, 7, 0.1),
                ("1995-01-10", 1, 0.1, 5, 0.1, 8, 0.2),
            ],
        )
        columns = ColumnMap(relation.schema)
        signature = parse_signature("(Cust (Ord Item*)*)*")
        assert group_probability(signature, relation.rows, columns) == pytest.approx(0.0028)

    def test_product_signature(self):
        # R* S*: the cross-product bag factors into independent OR groups.
        rows = [
            ("d", 1, 0.5, 10, 0.25),
            ("d", 1, 0.5, 11, 0.5),
            ("d", 2, 0.5, 10, 0.25),
            ("d", 2, 0.5, 11, 0.5),
        ]
        relation = make_relation(["R", "S"], rows)
        columns = ColumnMap(relation.schema)
        expected = (1 - 0.5 * 0.5) * (1 - 0.75 * 0.5)
        assert group_probability(parse_signature("R* S*"), rows, columns) == pytest.approx(expected)

    def test_single_table_with_multiple_variables_rejected(self):
        rows = [("d", 1, 0.5), ("d", 2, 0.5)]
        relation = make_relation(["R"], rows)
        columns = ColumnMap(relation.schema)
        with pytest.raises(ProbabilityError):
            group_probability(parse_signature("R"), rows, columns)

    def test_empty_bag_rejected(self):
        relation = make_relation(["R"], [])
        with pytest.raises(ProbabilityError):
            group_probability(parse_signature("R*"), [], ColumnMap(relation.schema))

    def test_non_1scan_group_rejected(self):
        rows = [("d", 1, 0.5, 2, 0.5)]
        relation = make_relation(["R", "S"], rows)
        with pytest.raises(QueryError):
            group_probability(parse_signature("(R* S*)*"), rows, ColumnMap(relation.schema))

    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(1, 4)), min_size=1, max_size=12
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_exact_dnf_probability_on_hierarchical_bags(self, pairs, rng):
        """Bags shaped like (R (S)*)* lineage match the exact DNF probability."""
        probabilities = {}

        def prob_of(variable, offset):
            if variable not in probabilities:
                probabilities[variable] = round(rng.uniform(0.05, 0.95), 3)
            return probabilities[variable]

        rows = []
        for r_value, s_value in sorted(set(pairs)):
            r_var = r_value  # R variable identified by its value
            s_var = 100 * r_value + s_value  # each S row joins exactly one R row
            rows.append(("d", r_var, prob_of(r_var, 0), s_var, prob_of(s_var, 100)))
        relation = make_relation(["R", "S"], rows)
        columns = ColumnMap(relation.schema)
        dnf, variable_probabilities = bag_dnf(rows, columns)
        expected = dnf_probability(dnf, variable_probabilities)
        actual = group_probability(parse_signature("(R S*)*"), rows, columns)
        assert actual == pytest.approx(expected, abs=1e-9)


class TestScanOperator:
    def build_two_bag_relation(self):
        rows = [
            ("a", 1, 0.1, 5, 0.1, 7, 0.1),
            ("a", 1, 0.1, 5, 0.1, 8, 0.2),
            ("b", 2, 0.2, 6, 0.3, 9, 0.4),
        ]
        return make_relation(["Cust", "Ord", "Item"], rows)

    def test_one_scan_operator(self):
        relation = self.build_two_bag_relation()
        signature = parse_signature("(Cust (Ord Item*)*)*")
        result = one_scan_operator(relation, signature)
        confidences = {row[0]: row[1] for row in result}
        assert confidences["a"] == pytest.approx(0.0028)
        assert confidences["b"] == pytest.approx(0.2 * 0.3 * 0.4)
        assert result.schema.names == ("d", "conf")

    def test_scan_confidences_requires_sorted_bags(self):
        relation = self.build_two_bag_relation()
        signature = parse_signature("(Cust (Ord Item*)*)*")
        columns = ColumnMap(relation.schema)
        results = dict(scan_confidences(relation.rows, columns, signature))
        assert set(results) == {("a",), ("b",)}

    def test_sort_column_order(self):
        relation = self.build_two_bag_relation()
        signature = parse_signature("(Cust (Ord Item*)*)*")
        order = sort_column_order(relation.schema, signature)
        assert order == ["d", "Cust.V", "Ord.V", "Item.V"]

    def test_streaming_matches_buffered(self):
        relation = self.build_two_bag_relation()
        signature = parse_signature("(Cust (Ord Item*)*)*")
        columns = ColumnMap(relation.schema)
        order = sort_column_order(relation.schema, signature)
        rows = relation.sorted_by(order).rows
        buffered = dict(scan_confidences(rows, columns, signature))
        streamed = dict(streaming_scan_confidences(rows, columns, signature))
        assert set(buffered) == set(streamed)
        for key in buffered:
            assert streamed[key] == pytest.approx(buffered[key])

    def test_streaming_rejects_many_to_many_products(self):
        relation = make_relation(["R", "S"], [("d", 1, 0.5, 2, 0.5)])
        with pytest.raises(QueryError):
            OneScanState(parse_signature("R* S*"), ColumnMap(relation.schema))

    def test_streaming_rejects_non_1scan(self):
        relation = make_relation(["R", "S"], [("d", 1, 0.5, 2, 0.5)])
        with pytest.raises(QueryError):
            OneScanState(parse_signature("(R* S*)*"), ColumnMap(relation.schema))

    def test_boolean_answer_no_data_columns(self):
        schema = bag_schema(["R"], data_columns=())
        relation = Relation("answer", schema, [(1, 0.3), (2, 0.5)])
        result = one_scan_operator(relation, parse_signature("R*"))
        assert len(result) == 1
        assert result.rows[0][-1] == pytest.approx(1 - 0.7 * 0.5)

"""Tests for the hierarchical property and query tree construction."""

import pytest

from repro.errors import NonHierarchicalQueryError
from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.hierarchy import (
    build_hierarchy,
    is_hierarchical,
    relevant_join_attributes,
    witness_non_hierarchical,
)


def intro_query(item_has_ckey=True, projection=("odate",)):
    """The Introduction's query Q (and its non-hierarchical variant Q')."""
    item_attributes = ["okey", "discount"] + (["ckey"] if item_has_ckey else [])
    return ConjunctiveQuery(
        "Q" if item_has_ckey else "Q'",
        [
            Atom("Cust", ["ckey", "cname"]),
            Atom("Ord", ["okey", "ckey", "odate"]),
            Atom("Item", item_attributes),
        ],
        projection=projection,
    )


class TestHierarchicalProperty:
    def test_intro_query_is_hierarchical(self):
        assert is_hierarchical(intro_query())

    def test_dropping_ckey_from_item_is_not(self):
        # Q' of the Introduction: the prototypical hard pattern.
        query = intro_query(item_has_ckey=False)
        assert not is_hierarchical(query)
        witness = witness_non_hierarchical(query)
        assert witness is not None and witness[0] == "Ord"
        assert set(witness[1:]) == {"ckey", "okey"}

    def test_classic_rst_pattern(self):
        query = ConjunctiveQuery(
            "hard", [Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])]
        )
        assert not is_hierarchical(query)

    def test_head_attributes_are_ignored(self):
        # Projecting one of the conflicting attributes makes the query easy.
        query = ConjunctiveQuery(
            "easy",
            [Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])],
            projection=["x"],
        )
        assert is_hierarchical(query)
        assert relevant_join_attributes(query) == {"y"}

    def test_single_atom_is_hierarchical(self):
        assert is_hierarchical(ConjunctiveQuery("one", [Atom("R", ["a", "b"])]))

    def test_product_is_hierarchical(self):
        query = ConjunctiveQuery("prod", [Atom("R", ["a"]), Atom("S", ["b"])])
        assert is_hierarchical(query)


class TestTreeConstruction:
    def test_intro_query_tree_shape(self):
        # Fig. 3: root ckey with Cust below and an inner node ckey,okey over Ord/Item.
        tree = build_hierarchy(intro_query())
        assert tree.attributes == frozenset({"ckey"})
        assert not tree.is_leaf and len(tree.children) == 2
        leaf_tables = {child.atom.table for child in tree.children if child.is_leaf}
        assert leaf_tables == {"Cust"}
        inner = next(child for child in tree.children if not child.is_leaf)
        assert inner.attributes == frozenset({"ckey", "okey"})
        assert set(inner.tables()) == {"Ord", "Item"}

    def test_tree_tables_order_and_leaves(self):
        tree = build_hierarchy(intro_query())
        assert tree.tables() == ["Cust", "Ord", "Item"]
        assert [leaf.atom.table for leaf in tree.leaves()] == ["Cust", "Ord", "Item"]
        assert tree.find_leaf("Ord") is not None
        assert tree.find_leaf("Nope") is None

    def test_product_tree_has_empty_root(self):
        query = ConjunctiveQuery("prod", [Atom("R", ["a"]), Atom("S", ["b"])])
        tree = build_hierarchy(query)
        assert tree.attributes == frozenset()
        assert len(tree.children) == 2

    def test_single_atom_tree_is_leaf(self):
        tree = build_hierarchy(ConjunctiveQuery("one", [Atom("R", ["a"])]))
        assert tree.is_leaf and tree.atom.table == "R"

    def test_non_hierarchical_raises_with_witness(self):
        with pytest.raises(NonHierarchicalQueryError) as excinfo:
            build_hierarchy(intro_query(item_has_ckey=False))
        assert "ckey" in str(excinfo.value) or "okey" in str(excinfo.value)

    def test_pretty_rendering(self):
        text = str(build_hierarchy(intro_query()))
        assert "ckey" in text and "Cust(" in text

    def test_deep_chain(self):
        # Query 7-like chain: N1 - S - L - O - C - N2.  Without the key FDs the
        # chain is non-hierarchical (the lineitem table joins S and O on two
        # unrelated attributes); projecting the chain keys makes it easy.
        atoms = [
            Atom("N1", ["nk1", "n1name"]),
            Atom("S", ["sk", "nk1"]),
            Atom("L", ["ok", "sk", "ship"]),
            Atom("O", ["ok", "ck"]),
            Atom("C", ["ck", "nk2"]),
            Atom("N2", ["nk2", "n2name"]),
        ]
        hard = ConjunctiveQuery("chain", atoms, projection=["n1name", "n2name"])
        assert not is_hierarchical(hard)
        easy = ConjunctiveQuery(
            "chain-keys", atoms, projection=["sk", "ok", "ck", "n1name", "n2name"]
        )
        assert is_hierarchical(easy)
        tree = build_hierarchy(easy)
        assert set(tree.tables()) == {"N1", "S", "L", "O", "C", "N2"}

"""Deterministic fault injection: every scripted failure is survivable.

The battery walks the named seams (``repro.faults.SEAMS``) and proves the
PR 10 robustness contract for each: an injected failure yields either a
clean structured error or a correctly *degraded* answer with sound bounds —
never a hang, never a silently wrong bound — and wherever the answer is not
degraded it is **bit-identical** to the no-fault run (supervision retries
exploit the purity of the compute phases, so a respawned pool or an inline
fallback cannot change a single bit).
"""

import pytest

from repro.errors import ConfigurationError, InjectedFault
from repro.faults import SEAMS, FaultPlan, fault_point, injected
from repro.query.parser import parse_query
from repro.service import QueryService, ServiceConfig, result_payload
from repro.service.__main__ import demo_database
from repro.sprout.engine import SproutEngine

SQL = "SELECT room, conf() FROM alarm, uplink, zone_ok"


def unsafe_query():
    db = demo_database()
    return db, parse_query(SQL, db.catalog).query


def topk_payload(db, query, *, refine_lanes=0, workers=0):
    # shared_lineage pinned: the lane/worker/store seams under test live in
    # the shared-store path, so the battery must not silently degrade to the
    # legacy per-tuple scheduler on the REPRO_SHARED_LINEAGE=0 CI leg.
    with SproutEngine(
        db, workers=workers, refine_lanes=refine_lanes, shared_lineage=True
    ) as engine:
        result = engine.evaluate_topk(query, k=2, workers=workers)
        return result_payload(result), engine.cache_stats()


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse("lane_pool.submit:1,3;http.read:2")
        with injected(plan):
            with pytest.raises(InjectedFault):
                fault_point("lane_pool.submit")  # call 1 is scripted
            fault_point("lane_pool.submit")  # call 2 is not
            fault_point("http.read")  # call 1 is not
            with pytest.raises(InjectedFault):
                fault_point("http.read")  # call 2 is scripted

    def test_scripted_calls_fire_exactly(self):
        plan = FaultPlan.parse("store.propagate:2")
        with injected(plan):
            fault_point("store.propagate")  # call 1: clean
            with pytest.raises(InjectedFault) as caught:
                fault_point("store.propagate")  # call 2: scripted
            assert caught.value.seam == "store.propagate"
            assert caught.value.call == 2
            fault_point("store.propagate")  # call 3: clean again
        assert plan.fired("store.propagate") == 1
        assert plan.fired() == 1

    def test_seeded_plans_are_reproducible(self):
        assert FaultPlan.seeded(7).schedule == FaultPlan.seeded(7).schedule
        assert FaultPlan.seeded(7).schedule != FaultPlan.seeded(8).schedule
        assert set(FaultPlan.seeded(7).schedule) == set(SEAMS)

    def test_malformed_specs_rejected(self):
        for spec in ("nope:1", "lane_pool.submit", "lane_pool.submit:x", "seed:x"):
            with pytest.raises(ConfigurationError):
                FaultPlan.parse(spec)

    def test_unknown_seam_is_a_typo_even_without_a_plan(self):
        with pytest.raises(ConfigurationError):
            fault_point("no.such.seam")

    def test_no_plan_is_free(self):
        for seam in SEAMS:
            fault_point(seam)  # no plan installed: a no-op

    def test_env_var_activates_a_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.propagate:1")
        db, query = unsafe_query()
        with SproutEngine(db, workers=0, shared_lineage=True) as engine:
            with pytest.raises(InjectedFault):
                engine.evaluate_topk(query, k=2)

    def test_env_var_malformed_is_a_configuration_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "garbage")
        with pytest.raises(ConfigurationError):
            fault_point("store.propagate")


class TestLanePoolSeam:
    """lane_pool.submit: respawn is invisible, exhaustion degrades to inline."""

    def test_one_fault_respawns_bit_identically(self):
        db, query = unsafe_query()
        clean, _ = topk_payload(db, query, refine_lanes=2)
        with injected(FaultPlan.parse("lane_pool.submit:1")):
            faulted, stats = topk_payload(demo_database(), query, refine_lanes=2)
        assert faulted == clean
        assert stats["pool_respawns"] == 1
        assert stats["pool_fallbacks"] == 0

    def test_repeated_faults_fall_back_inline_bit_identically(self):
        db, query = unsafe_query()
        clean, _ = topk_payload(db, query, refine_lanes=2)
        # Scripted to outlive max_respawns: every retry fails too.
        calls = ",".join(str(n) for n in range(1, 8))
        with injected(FaultPlan.parse(f"lane_pool.submit:{calls}")):
            faulted, stats = topk_payload(demo_database(), query, refine_lanes=2)
        assert faulted == clean
        assert stats["pool_respawns"] == 2  # the cap
        assert stats["pool_fallbacks"] >= 1

    def test_lanes_match_serial_under_faults(self):
        db, query = unsafe_query()
        serial, _ = topk_payload(db, query, refine_lanes=0)
        with injected(FaultPlan.parse("lane_pool.submit:1,2,3,4,5")):
            faulted, _ = topk_payload(demo_database(), query, refine_lanes=2)
        assert faulted == serial


@pytest.mark.slow
class TestWorkerPoolSeam:
    """worker_pool.run: the shipped-segment route under a dying pool."""

    def test_one_fault_respawns_bit_identically(self):
        db, query = unsafe_query()
        clean, _ = topk_payload(db, query, workers=0)
        with injected(FaultPlan.parse("worker_pool.run:1")):
            faulted, stats = topk_payload(demo_database(), query, workers=1)
        assert faulted == clean
        assert stats["pool_respawns"] == 1

    def test_exhausted_respawns_degrade_to_serial_bit_identically(self):
        db, query = unsafe_query()
        clean, _ = topk_payload(db, query, workers=0)
        with injected(FaultPlan.parse("worker_pool.run:1,2,3")):
            faulted, stats = topk_payload(demo_database(), query, workers=1)
        assert faulted == clean
        assert stats["pool_respawns"] == 2
        assert stats["pool_fallbacks"] == 1


class TestStorePropagateSeam:
    """store.propagate: fires at round entry, so the store is never torn."""

    def test_fault_is_structured_and_store_stays_sound(self):
        db, query = unsafe_query()
        clean, _ = topk_payload(db, query)
        engine = SproutEngine(demo_database(), workers=0, shared_lineage=True)
        with injected(FaultPlan.parse("store.propagate:1")):
            with pytest.raises(InjectedFault):
                engine.evaluate_topk(query, k=2)
        # The seam fires before the round plans or commits anything: the
        # retried request computes the exact no-fault answer.
        retried = result_payload(engine.evaluate_topk(query, k=2))
        engine.close()
        assert retried == clean

    def test_mid_run_fault_leaves_sound_monotone_bounds(self):
        db, query = unsafe_query()
        clean, _ = topk_payload(db, query)
        engine = SproutEngine(demo_database(), workers=0, shared_lineage=True)
        with injected(FaultPlan.parse("store.propagate:3")):
            with pytest.raises(InjectedFault):
                engine.evaluate_topk(query, k=2)
        # Two committed rounds survive; re-running refines onward from them
        # to the same fixpoint (monotone shrinkage, deterministic schedule).
        retried = result_payload(engine.evaluate_topk(query, k=2))
        engine.close()
        assert retried["rows"] == clean["rows"]
        assert retried["decided"] == clean["decided"]

    def test_service_keeps_serving_after_a_store_fault(self):
        db = demo_database()
        engine = SproutEngine(db, workers=0, shared_lineage=True)
        with QueryService(db, engine=engine) as service:
            with injected(FaultPlan.parse("store.propagate:1")):
                with pytest.raises(InjectedFault):
                    service.execute("topk", {"sql": SQL, "k": 2})
            assert service.failed == 1
            ok = service.execute("topk", {"sql": SQL, "k": 2})
            assert ok["decided"] is True
            assert service.stats()["completed"] == 1


class TestHttpReadSeam:
    """http.read: a dropped socket is the client's problem, not the server's."""

    def test_server_survives_and_client_retries_through(self):
        from repro.service import RetryPolicy, ServiceClient, ServiceServer

        plan = FaultPlan.parse("http.read:1")
        with ServiceServer(QueryService(demo_database())) as server:
            client = ServiceClient(
                server.host,
                server.port,
                retry=RetryPolicy(retries=3, backoff=0.001, seed=0),
            )
            with injected(plan):
                payload = client.topk(SQL, k=2)
            assert payload["decided"] is True
            assert plan.fired("http.read") == 1
            # The server shrugged the drop off and keeps serving.
            assert client.healthz() == {"ok": True}

    def test_without_retries_the_drop_is_a_structured_error(self):
        from repro.errors import ServiceConnectionError
        from repro.service import RetryPolicy, ServiceClient, ServiceServer

        with ServiceServer(QueryService(demo_database())) as server:
            client = ServiceClient(
                server.host, server.port, retry=RetryPolicy(retries=0)
            )
            with injected(FaultPlan.parse("http.read:1")):
                with pytest.raises(ServiceConnectionError):
                    client.topk(SQL, k=2)
            assert client.healthz() == {"ok": True}


class TestSnapshotWriteSeam:
    """snapshot.write: a failed checkpoint never takes down the lane."""

    def test_failed_periodic_snapshot_counts_and_serving_continues(self, tmp_path):
        config = ServiceConfig(
            snapshot_path=str(tmp_path / "state.snap"), snapshot_every=1
        )
        with QueryService(demo_database(), config=config) as service:
            with injected(FaultPlan.parse("snapshot.write:1")):
                first = service.execute("topk", {"sql": SQL, "k": 2})
                # Request 2 executes strictly after request 1's (faulted)
                # checkpoint attempt — the lane is serial.
                second = service.execute("topk", {"sql": SQL, "k": 2})
            third = service.execute("topk", {"sql": SQL, "k": 2})
            assert first["decided"] is True
            assert second["rows"] == first["rows"] == third["rows"]
            stats = service.stats()["snapshot"]
            assert stats["errors"] == 1
            assert stats["written"] >= 1  # request 2's checkpoint landed

    def test_failed_write_preserves_the_previous_snapshot(self, tmp_path):
        from repro.errors import SnapshotError
        from repro.service import read_snapshot, write_snapshot

        path = str(tmp_path / "state.snap")
        write_snapshot(path, {"generation": 1})
        with injected(FaultPlan.parse("snapshot.write:1")):
            with pytest.raises(SnapshotError):
                write_snapshot(path, {"generation": 2})
        assert read_snapshot(path) == {"generation": 1}

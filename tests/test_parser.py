"""Tests for the SQL-ish parser with conf()."""

import pytest

from repro.errors import QueryError
from repro.algebra.expressions import Comparison
from repro.query.parser import parse_query
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register_table("cust", Schema.of("ckey:int", "cname:str"), primary_key=["ckey"])
    catalog.register_table(
        "ord", Schema.of("okey:int", "ckey:int", "odate:date"), primary_key=["okey"]
    )
    catalog.register_table("item", Schema.of("okey:int", "discount:float"))
    return catalog


class TestParse:
    def test_basic_query(self, catalog):
        parsed = parse_query(
            "SELECT odate, conf() FROM cust, ord, item WHERE cname = 'Joe' AND discount > 0",
            catalog,
            name="Q",
        )
        assert parsed.wants_confidence
        assert parsed.query.projection == ("odate",)
        assert {a.table for a in parsed.query.atoms} == {"cust", "ord", "item"}
        assert Comparison("cname", "=", "Joe") in parsed.query.selection_predicates()
        assert Comparison("discount", ">", 0) in parsed.query.selection_predicates()

    def test_boolean_query(self, catalog):
        parsed = parse_query("SELECT conf() FROM cust WHERE cname = 'Joe'", catalog)
        assert parsed.query.is_boolean() and parsed.wants_confidence

    def test_distinct_flag(self, catalog):
        parsed = parse_query("SELECT DISTINCT cname FROM cust", catalog)
        assert parsed.distinct and not parsed.wants_confidence

    def test_qualified_attributes(self, catalog):
        parsed = parse_query("SELECT ord.odate FROM ord WHERE ord.okey = 5", catalog)
        assert parsed.query.projection == ("odate",)
        assert parsed.query.selection_predicates() == [Comparison("okey", "=", 5)]

    def test_join_condition_on_same_name_is_implicit(self, catalog):
        parsed = parse_query("SELECT odate FROM cust, ord WHERE cust.ckey = ord.ckey", catalog)
        assert parsed.query.selection_predicates() == []
        assert "ckey" in parsed.query.join_attributes()

    def test_numeric_and_boolean_literals(self, catalog):
        parsed = parse_query(
            "SELECT odate FROM ord WHERE okey >= 3 AND odate < '1995-01-01'", catalog
        )
        predicates = parsed.query.selection_predicates()
        assert Comparison("okey", ">=", 3) in predicates
        assert Comparison("odate", "<", "1995-01-01") in predicates

    def test_case_insensitive_table_lookup(self, catalog):
        parsed = parse_query("SELECT cname FROM CUST", catalog)
        assert parsed.query.table_names() == ["cust"]


class TestParseErrors:
    def test_not_a_select(self, catalog):
        with pytest.raises(QueryError):
            parse_query("DELETE FROM cust", catalog)

    def test_unknown_table(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT x FROM nowhere", catalog)

    def test_unknown_attribute(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT shoe_size FROM cust", catalog)

    def test_star_rejected(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT * FROM cust", catalog)

    def test_inequality_join_rejected(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT odate FROM ord, item WHERE okey < discount", catalog)

    def test_unquoted_string_rejected(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT cname FROM cust WHERE cname = Joe", catalog)

    def test_join_on_different_names_rejected(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT cname FROM cust, ord WHERE ckey = okey", catalog)

    def test_malformed_condition(self, catalog):
        with pytest.raises(QueryError):
            parse_query("SELECT cname FROM cust WHERE cname LIKE 'J%'", catalog)

"""Tests for propositional formulas, DNF lineage, and exact probability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProbabilityError
from repro.prob.formulas import (
    DNF,
    And,
    Bottom,
    Or,
    Top,
    Var,
    dnf_probability,
    dnf_probability_enumeration,
    is_read_once,
)


PROBS = {1: 0.1, 2: 0.2, 3: 0.3, 4: 0.4, 5: 0.5, 6: 0.6}


class TestFormulaAlgebra:
    def test_var(self):
        formula = Var(1)
        assert formula.probability(PROBS) == 0.1
        assert formula.evaluate({1: True}) and not formula.evaluate({1: False})
        assert formula.variables() == frozenset({1})

    def test_constants(self):
        assert Top().probability(PROBS) == 1.0 and Bottom().probability(PROBS) == 0.0
        assert Top().evaluate({}) and not Bottom().evaluate({})

    def test_and_or_probability_1of(self):
        # x1 (x2 ∨ x3): the paper's 1OF probability evaluation
        formula = And([Var(1), Or([Var(2), Var(3)])])
        expected = 0.1 * (1 - 0.8 * 0.7)
        assert formula.probability(PROBS) == pytest.approx(expected)
        assert is_read_once(formula)

    def test_paper_example_probability(self):
        # x1 y1 (z1 ∨ z2) with the Fig. 1 probabilities = 0.0028
        probabilities = {1: 0.1, 2: 0.1, 3: 0.1, 4: 0.2}
        formula = And([Var(1), Var(2), Or([Var(3), Var(4)])])
        assert formula.probability(probabilities) == pytest.approx(0.1 * 0.1 * 0.28)

    def test_non_1of_probability_rejected(self):
        formula = Or([And([Var(1), Var(2)]), And([Var(1), Var(3)])])
        assert not is_read_once(formula)
        with pytest.raises(ProbabilityError):
            formula.probability(PROBS)

    def test_missing_probability(self):
        with pytest.raises(ProbabilityError):
            Var(99).probability(PROBS)

    def test_occurrence_count(self):
        formula = And([Var(1), Or([Var(2), Var(1)])])
        assert formula.occurrence_count() == {1: 2, 2: 1}

    def test_to_dnf(self):
        formula = And([Var(1), Or([Var(2), Var(3)])])
        assert formula.to_dnf() == DNF([{1, 2}, {1, 3}])

    def test_empty_nary_rejected(self):
        with pytest.raises(ProbabilityError):
            And([])


class TestDNF:
    def test_from_rows_and_str(self):
        dnf = DNF.from_rows([[1, 2], [1, 3]])
        assert len(dnf) == 2
        assert "x1x2" in str(dnf)

    def test_true_false(self):
        assert DNF().is_false()
        assert DNF([[]]).is_true()
        assert not DNF([[1]]).is_false()

    def test_evaluate(self):
        dnf = DNF([[1, 2], [3]])
        assert dnf.evaluate({1: True, 2: True, 3: False})
        assert dnf.evaluate({1: False, 2: False, 3: True})
        assert not dnf.evaluate({1: True, 2: False, 3: False})

    def test_condition(self):
        dnf = DNF([[1, 2], [3]])
        assert dnf.condition(1, True) == DNF([[2], [3]])
        assert dnf.condition(1, False) == DNF([[3]])

    def test_minimised_removes_subsumed(self):
        dnf = DNF([[1], [1, 2], [3]])
        assert dnf.minimised() == DNF([[1], [3]])

    def test_union(self):
        assert DNF([[1]]) | DNF([[2]]) == DNF([[1], [2]])

    def test_to_formula_roundtrip(self):
        dnf = DNF([[1, 2], [3]])
        assert dnf.to_formula().to_dnf() == dnf
        assert isinstance(DNF().to_formula(), Bottom)
        assert isinstance(DNF([[]]).to_formula(), Top)


class TestExactProbability:
    def test_independent_clauses(self):
        dnf = DNF([[1], [2]])
        expected = 1 - 0.9 * 0.8
        assert dnf_probability(dnf, PROBS) == pytest.approx(expected)

    def test_shared_variable(self):
        # x1x2 ∨ x1x3 = x1(x2 ∨ x3)
        dnf = DNF([[1, 2], [1, 3]])
        expected = 0.1 * (1 - 0.8 * 0.7)
        assert dnf_probability(dnf, PROBS) == pytest.approx(expected)

    def test_constant_dnfs(self):
        assert dnf_probability(DNF(), PROBS) == 0.0
        assert dnf_probability(DNF([[]]), PROBS) == 1.0
        assert dnf_probability_enumeration(DNF(), PROBS) == 0.0
        assert dnf_probability_enumeration(DNF([[]]), PROBS) == 1.0

    def test_hard_pattern_matches_enumeration(self):
        # R(x), S(x,y), T(y): the prototypical #P-hard query's lineage shape.
        dnf = DNF([[1, 3, 5], [1, 3, 6], [2, 4, 6]])
        assert dnf_probability(dnf, PROBS) == pytest.approx(
            dnf_probability_enumeration(dnf, PROBS)
        )

    @given(
        st.lists(
            st.frozensets(st.integers(1, 6), min_size=1, max_size=4), min_size=1, max_size=6
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_shannon_matches_enumeration(self, clauses):
        dnf = DNF(clauses)
        assert dnf_probability(dnf, PROBS) == pytest.approx(
            dnf_probability_enumeration(dnf, PROBS), abs=1e-9
        )

    @given(
        st.lists(
            st.frozensets(st.integers(1, 6), min_size=1, max_size=3), min_size=1, max_size=5
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_probability_is_monotone_in_clauses(self, clauses):
        dnf = DNF(clauses)
        smaller = DNF(list(clauses)[:-1])
        assert dnf_probability(dnf, PROBS) >= dnf_probability(smaller, PROBS) - 1e-12

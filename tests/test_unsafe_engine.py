"""Engine-level tests of the unsafe-query path.

Non-hierarchical queries without a hierarchical FD-reduct have no safe plan
and no signature; the engine must route them to the d-tree confidence engine
(exact by default, anytime bounds with ``confidence="approx"``) instead of
raising.  Differential tests pin the routed results to brute-force world
enumeration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_confidences_close

from repro import Atom, ConjunctiveQuery, PlanningError, ProbabilisticDatabase, SproutEngine
from repro.prob import confidences_by_enumeration
from repro.sprout import evaluate_deterministic
from repro.storage import Relation, Schema


def unsafe_query(projection=()):
    """R(a) ⋈ S(a, b) ⋈ T(b): the canonical non-hierarchical query."""
    return ConjunctiveQuery(
        "H0" if not projection else "H0p",
        [Atom("R", ["a"]), Atom("S", ["a", "b"]), Atom("T", ["b"])],
        projection=projection,
    )


def build_database(r_probs, s_rows, s_probs, t_probs):
    db = ProbabilisticDatabase("unsafe")
    r_rows = [(i,) for i in range(len(r_probs))]
    t_rows = [(i,) for i in range(len(t_probs))]
    db.add_table(Relation("R", Schema.of("a:int"), r_rows), probabilities=r_probs)
    db.add_table(Relation("S", Schema.of("a:int", "b:int"), s_rows), probabilities=s_probs)
    db.add_table(Relation("T", Schema.of("b:int"), t_rows), probabilities=t_probs)
    return db


@st.composite
def unsafe_database(draw):
    """A small R/S/T instance with at most 16 variables."""
    r_size = draw(st.integers(1, 3))
    t_size = draw(st.integers(1, 3))
    s_size = draw(st.integers(1, 6))
    probability = st.floats(min_value=0.05, max_value=0.95)
    s_rows = list(
        dict.fromkeys(
            (
                draw(st.integers(0, r_size - 1)),
                draw(st.integers(0, t_size - 1)),
            )
            for _ in range(s_size)
        )
    )
    return build_database(
        [draw(probability) for _ in range(r_size)],
        s_rows,
        [draw(probability) for _ in s_rows],
        [draw(probability) for _ in range(t_size)],
    )


def enumerate_truth(db, query):
    return confidences_by_enumeration(
        db, lambda instance: evaluate_deterministic(query, instance)
    )


@pytest.fixture
def unsafe_db():
    return build_database(
        [0.4, 0.5, 0.6],
        [(1, 1), (1, 2), (2, 2), (3, 1), (3, 3)],
        [0.3, 0.7, 0.2, 0.9, 0.5],
        [0.8, 0.35, 0.45],
    )


class TestUnsafeRouting:
    def test_query_is_not_tractable(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        assert not engine.is_tractable(unsafe_query())

    @pytest.mark.parametrize("plan", ("lazy", "eager", "hybrid"))
    def test_operator_plans_route_to_dtree(self, unsafe_db, plan):
        engine = SproutEngine(unsafe_db)
        result = engine.evaluate(unsafe_query(), plan=plan)
        assert result.plan_style == "dtree"
        assert result.confidence == "exact"
        truth = enumerate_truth(unsafe_db, unsafe_query())
        assert result.boolean_confidence() == pytest.approx(truth[()], abs=1e-9)

    def test_explicit_dtree_plan(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        result = engine.evaluate(unsafe_query(["a"]), plan="dtree")
        truth = enumerate_truth(unsafe_db, unsafe_query(["a"]))
        assert_confidences_close(result.confidences(), truth)
        # Exact mode reports degenerate bounds.
        for data, confidence in result.confidences().items():
            lower, upper = result.bounds[data]
            assert lower == pytest.approx(upper)
            assert lower == pytest.approx(confidence)

    def test_explain_mentions_dtree(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        assert "d-tree" in engine.explain(unsafe_query())
        assert "d-tree" in engine.explain(unsafe_query(), plan="dtree")

    def test_batch_execution_matches_row(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        row = engine.evaluate(unsafe_query(["a"]))
        batch = engine.evaluate(unsafe_query(["a"]), execution="batch")
        assert_confidences_close(batch.confidences(), row.confidences(), 1e-12)

    def test_safe_queries_keep_operator_plans(self, unsafe_db):
        # A hierarchical query must not be routed away from the operator path.
        safe = ConjunctiveQuery(
            "safe", [Atom("R", ["a"]), Atom("S", ["a", "b"])], projection=[]
        )
        engine = SproutEngine(unsafe_db)
        assert engine.is_tractable(safe)
        result = engine.evaluate(safe, plan="lazy")
        assert result.plan_style == "lazy"
        assert result.signature is not None


class TestApproxMode:
    def test_engine_level_epsilon(self, unsafe_db):
        engine = SproutEngine(unsafe_db, confidence="approx", epsilon=0.02)
        truth = enumerate_truth(unsafe_db, unsafe_query())
        result = engine.evaluate(unsafe_query())
        assert result.confidence == "approx"
        assert result.epsilon == 0.02
        lower, upper = result.bounds[()]
        assert lower - 1e-12 <= truth[()] <= upper + 1e-12
        assert abs(result.boolean_confidence() - truth[()]) <= 0.02 + 1e-12

    def test_call_level_override(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        result = engine.evaluate(unsafe_query(), confidence="approx", epsilon=0.1)
        assert result.confidence == "approx"
        assert result.epsilon == 0.1
        exact = engine.evaluate(unsafe_query())
        lower, upper = result.bounds[()]
        assert lower - 1e-12 <= exact.boolean_confidence() <= upper + 1e-12

    def test_approx_applies_to_tractable_queries_too(self, unsafe_db):
        safe = ConjunctiveQuery(
            "safe", [Atom("R", ["a"]), Atom("S", ["a", "b"])], projection=[]
        )
        engine = SproutEngine(unsafe_db)
        exact = engine.evaluate(safe).boolean_confidence()
        approx = engine.evaluate(safe, confidence="approx", epsilon=0.01)
        assert approx.plan_style == "dtree"
        assert abs(approx.boolean_confidence() - exact) <= 0.01 + 1e-12

    @given(unsafe_database(), st.floats(min_value=0.01, max_value=0.2))
    @settings(max_examples=20, deadline=None)
    def test_bounds_bracket_enumeration(self, db, epsilon):
        engine = SproutEngine(db)
        truth = enumerate_truth(db, unsafe_query(["a"]))
        result = engine.evaluate(unsafe_query(["a"]), confidence="approx", epsilon=epsilon)
        assert set(result.confidences()) == set(truth)
        for data, true_confidence in truth.items():
            lower, upper = result.bounds[data]
            assert lower - 1e-9 <= true_confidence <= upper + 1e-9
            assert abs(result.confidences()[data] - true_confidence) <= epsilon + 1e-9

    @given(unsafe_database())
    @settings(max_examples=15, deadline=None)
    def test_exact_routing_matches_enumeration(self, db):
        engine = SproutEngine(db)
        truth = enumerate_truth(db, unsafe_query())
        result = engine.evaluate(unsafe_query())
        assert result.boolean_confidence() == pytest.approx(
            truth.get((), 0.0), abs=1e-9
        )


@pytest.fixture
def dense_unsafe_db():
    """A 5×5 bipartite instance whose Boolean lineage needs many Shannon steps.

    With ``dtree_max_steps=1`` its bracket stays wide, so the engine's
    Karp–Luby fallback supplies the point estimate — exactly the code path
    the ``seed`` parameter exists to make reproducible.
    """
    import random

    rng = random.Random(0)
    r_probs = [rng.uniform(0.2, 0.8) for _ in range(5)]
    t_probs = [rng.uniform(0.2, 0.8) for _ in range(5)]
    s_rows = [(a, b) for a in range(5) for b in range(5) if rng.random() < 0.7]
    s_probs = [rng.uniform(0.2, 0.8) for _ in s_rows]
    return build_database(r_probs, s_rows, s_probs, t_probs)


class TestSeedThreading:
    """The engine seed makes the Karp–Luby fallback reproducible."""

    def _engine(self, db, seed):
        return SproutEngine(
            db,
            confidence="approx",
            epsilon=1e-9,
            dtree_max_steps=1,
            monte_carlo_samples=400,
            seed=seed,
        )

    def test_same_seed_reproduces_confidences(self, dense_unsafe_db):
        first = self._engine(dense_unsafe_db, seed=42).evaluate(unsafe_query())
        second = self._engine(dense_unsafe_db, seed=42).evaluate(unsafe_query())
        assert first.confidences() == second.confidences()

    def test_fallback_engages_and_seeds_differ(self, dense_unsafe_db):
        results = {
            seed: self._engine(dense_unsafe_db, seed=seed).evaluate(unsafe_query())
            for seed in (1, 2, 3)
        }
        estimates = {r.boolean_confidence() for r in results.values()}
        # The bracket is wide (compilation was capped after one step) and the
        # Monte Carlo estimates genuinely depend on the seed.
        assert len(estimates) > 1
        for result in results.values():
            lower, upper = result.bounds[()]
            assert upper - lower > 0.01
            assert lower - 1e-12 <= result.boolean_confidence() <= upper + 1e-12


class TestValidation:
    def test_unknown_confidence_mode(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        with pytest.raises(PlanningError):
            engine.evaluate(unsafe_query(), confidence="guess")
        with pytest.raises(PlanningError):
            SproutEngine(unsafe_db, confidence="guess")

    def test_negative_epsilon(self, unsafe_db):
        engine = SproutEngine(unsafe_db)
        with pytest.raises(PlanningError):
            engine.evaluate(unsafe_query(), epsilon=-0.5)
        with pytest.raises(PlanningError):
            SproutEngine(unsafe_db, epsilon=-1.0)

"""Fig. 10: lazy plans for the remaining 18 TPC-H queries.

The paper plots, per query, the time to compute and store the answer tuples
("tuples") against the time to compute the probabilities of the distinct
tuples ("prob"), showing that probability computation is roughly two orders of
magnitude cheaper than answering the query.  Both components are measured here
and attached as ``extra_info`` (the benchmark time covers the full evaluation).
"""

from __future__ import annotations

import pytest

from repro.tpch import FIGURE10_KEYS, tpch_query

from conftest import run_benchmark


@pytest.mark.parametrize("key", FIGURE10_KEYS)
def test_fig10_lazy_plans(benchmark, engine, key):
    query = tpch_query(key).query
    result = run_benchmark(benchmark, engine.evaluate, query, plan="lazy")
    benchmark.extra_info["query"] = key
    benchmark.extra_info["tuples_seconds"] = round(result.tuples_seconds, 6)
    benchmark.extra_info["prob_seconds"] = round(result.prob_seconds, 6)
    benchmark.extra_info["answer_rows"] = result.answer_rows
    benchmark.extra_info["distinct_tuples"] = result.distinct_tuples
    benchmark.extra_info["scans"] = result.scans_used
    # The paper's observation: probability computation is a small fraction of
    # the total work for every one of these queries.
    if result.answer_rows > 0:
        assert result.prob_seconds <= max(result.tuples_seconds, 0.05) * 2

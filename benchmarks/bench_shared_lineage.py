"""Shared-lineage DAG scheduling vs. per-tuple refinement (the PR 5 claim).

The serial top-k/threshold scheduler now compiles candidate lineages into
one hash-consed DAG and, per logical step, expands the shared node with the
largest bound-width mass over the gating tuples (``shared_lineage=True``,
the default).  This benchmark quantifies the claim on the unsafe TPC-H
brand query of ``bench_topk_pruning.py``

    q(p_brand) :- part(partkey, p_brand), partsupp(partkey, suppkey,
                  ps_availqty), supplier(suppkey), ps_availqty < 3000

and asserts the acceptance contract:

* deciding the top-10 brand set takes **≥ 2× fewer logical refinement
  steps** than the PR 4 per-tuple scheduler (the round-based
  frontier-batch ``ParallelRefinementScheduler``, measured at workers=1
  with ``shared_lineage=False`` — with sharing on, parallel runs now take
  the shared-store offload and match the serial step counts exactly), and
  no more steps than the legacy serial per-tuple crossing-pair scheduler
  (``shared_lineage=False``);
* the decided sets and the exact confidences are **bit-identical** across
  all three paths — sharing changes the work, never the answer.

The instance is pinned to SF 0.001 (independent of ``REPRO_TPCH_SF``):
step counts are a property of this exact workload and the contrast claim
is calibrated on it.  Logical steps are Shannon expansions — in shared
mode an expansion of a node contained in many candidate lineages counts
once, which is exactly the saving being measured.  Every measured call
builds a fresh engine so no run starts from another's refined store.

``test_canonical_clause_caching`` additionally pins the satellite
micro-optimisation: the canonical clause serialisation is cached on the
DNF object, so re-canonicalising the same lineage (what the parallel
executor does on every task build) is O(1) after the first call.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.prob.dtree import canonical_clauses
from repro.prob.formulas import DNF
from repro.tpch import probabilistic_tpch

from conftest import run_benchmark

K = 10
TAU = 0.9
AVAILQTY_CUT = 3000
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def shared_db():
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


def brand_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        "unsafe_brands",
        [
            Atom("part", ["partkey", "p_brand"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([Comparison("ps_availqty", "<", AVAILQTY_CUT)]),
    )


def decide_topk(db, workers=0, shared_lineage=True):
    """Decision phase only (approx mode: no exact-finishing steps mixed in).

    Every knob is pinned explicitly — the contrast must not silently change
    scheduler when ``REPRO_WORKERS`` / ``REPRO_SHARED_LINEAGE`` are set in
    the environment (CI runs legs with both).
    """
    with SproutEngine(db, workers=workers, shared_lineage=shared_lineage) as engine:
        return engine.evaluate_topk(brand_query(), k=K, confidence="approx")


def test_topk_shared_vs_per_tuple_schedulers(benchmark, shared_db):
    """The headline: ≥ 2× fewer logical steps than the per-tuple scheduler."""
    per_tuple_parallel = decide_topk(shared_db, workers=1, shared_lineage=False)
    per_tuple_serial = decide_topk(shared_db, shared_lineage=False)
    shared = run_benchmark(benchmark, decide_topk, shared_db)
    assert shared.decided and per_tuple_parallel.decided and per_tuple_serial.decided

    benchmark.extra_info["k"] = K
    benchmark.extra_info["shared_steps"] = shared.refine_steps
    benchmark.extra_info["per_tuple_scheduler_steps"] = per_tuple_parallel.refine_steps
    benchmark.extra_info["legacy_serial_steps"] = per_tuple_serial.refine_steps
    benchmark.extra_info["speedup_vs_per_tuple"] = (
        per_tuple_parallel.refine_steps / max(1, shared.refine_steps)
    )
    benchmark.extra_info["speedup_vs_legacy_serial"] = (
        per_tuple_serial.refine_steps / max(1, shared.refine_steps)
    )

    # The acceptance claim: the shared-DAG scheduler decides the top-10 set
    # in at least 2x fewer logical refinement steps than the PR 4 per-tuple
    # (round-based frontier-batch) scheduler...
    assert shared.refine_steps * SPEEDUP_FLOOR <= per_tuple_parallel.refine_steps
    # ... and never regresses against the legacy serial crossing-pair path.
    assert shared.refine_steps <= per_tuple_serial.refine_steps

    # Same decided set under all three schedulers; all are proven decisions.
    assert set(shared.confidences()) == set(per_tuple_parallel.confidences())
    assert set(shared.confidences()) == set(per_tuple_serial.confidences())


def test_topk_exact_confidences_bit_identical(benchmark, shared_db):
    """Exact mode: shared on/off and the workers=1 path agree to the bit."""
    result = run_benchmark(
        benchmark,
        lambda: SproutEngine(shared_db, workers=0, shared_lineage=True).evaluate_topk(
            brand_query(), k=K
        ),
    )
    legacy = SproutEngine(shared_db, workers=0, shared_lineage=False).evaluate_topk(
        brand_query(), k=K
    )
    with SproutEngine(shared_db, workers=1, shared_lineage=False) as engine:
        parallel = engine.evaluate_topk(brand_query(), k=K)
    benchmark.extra_info["shared_steps"] = result.refine_steps
    benchmark.extra_info["legacy_steps"] = legacy.refine_steps
    benchmark.extra_info["parallel_steps"] = parallel.refine_steps
    assert result.decided and legacy.decided and parallel.decided
    # Bit-identical: same tuples, and float-for-float the same confidences.
    assert result.confidences() == legacy.confidences()
    assert result.confidences() == parallel.confidences()
    for data in result.confidences():
        lower, upper = result.bounds[data]
        assert upper - lower <= 1e-12


def test_threshold_shared_step_reduction(benchmark, shared_db):
    """τ-partition: tracked alongside top-k (no 2x gate; ratio recorded)."""
    def decide(workers=0, shared_lineage=True):
        with SproutEngine(
            shared_db, workers=workers, shared_lineage=shared_lineage
        ) as engine:
            return engine.evaluate_threshold(
                brand_query(), tau=TAU, confidence="approx"
            )

    legacy = decide(shared_lineage=False)
    per_tuple_parallel = decide(workers=1, shared_lineage=False)
    shared = run_benchmark(benchmark, decide)
    benchmark.extra_info["tau"] = TAU
    benchmark.extra_info["shared_steps"] = shared.refine_steps
    benchmark.extra_info["legacy_serial_steps"] = legacy.refine_steps
    benchmark.extra_info["per_tuple_scheduler_steps"] = per_tuple_parallel.refine_steps
    assert shared.decided and legacy.decided and per_tuple_parallel.decided
    assert set(shared.confidences()) == set(legacy.confidences())
    assert set(shared.confidences()) == set(per_tuple_parallel.confidences())
    assert shared.refine_steps <= legacy.refine_steps


def test_repeat_topk_reuses_shared_store(benchmark, shared_db):
    """A second top-k over the same lineage re-reads warm shared views."""
    engine = SproutEngine(shared_db, workers=0, shared_lineage=True)
    engine.evaluate_topk(brand_query(), k=K)  # warm the store

    result = run_benchmark(benchmark, engine.evaluate_topk, brand_query(), K)
    benchmark.extra_info["refine_steps"] = result.refine_steps
    benchmark.extra_info["cache_hits"] = engine.dtree_cache.hits
    benchmark.extra_info["store_nodes"] = engine.dtree_cache.store.node_count
    assert result.decided
    assert result.refine_steps == 0
    assert engine.dtree_cache.hits > 0


def test_canonical_clause_caching(benchmark):
    """Satellite: canonical serialisation is computed once per DNF object."""
    dnf = DNF([[3 * i, 3 * i + 1, 3 * i + 2] for i in range(4000)])
    started = perf_counter()
    first = canonical_clauses(dnf)
    first_seconds = perf_counter() - started

    result = run_benchmark(benchmark, lambda: canonical_clauses(dnf))
    assert result is first  # the cached object itself, not a recomputation

    started = perf_counter()
    for _ in range(100):
        canonical_clauses(dnf)
    cached_seconds = (perf_counter() - started) / 100

    benchmark.extra_info["clauses"] = len(dnf)
    benchmark.extra_info["first_call_seconds"] = first_seconds
    benchmark.extra_info["cached_call_seconds"] = cached_seconds
    benchmark.extra_info["cache_speedup"] = first_seconds / max(cached_seconds, 1e-12)
    # The win the benchmark JSON tracks: cached reads are at least 10x the
    # full sort (in practice several orders of magnitude).
    assert cached_seconds * 10 <= first_seconds

"""Deadlines as anytime degradation on the unsafe brand query (PR 10).

Decision requests now carry an optional wall-clock :class:`repro.deadline.
Deadline`, checked only *between* refinement rounds — a round that has
started always commits, so the store is never torn and the bounds on a
deadline-cut answer are exactly the sound monotone brackets of the last
completed round.  This benchmark pins both halves of that contract on the
unsafe TPC-H brand top-10 of ``bench_shared_lineage.py``:

* **zero overhead and bit-equality without pressure** — a run with no
  deadline and a run with a generous (60 s) deadline produce identical
  fingerprints: same decided set, confidences, bounds, logical steps, and
  raw IEEE-754 bound bytes.  The deadline check is a clock read between
  rounds; with headroom it must not change a bit.  Timings for both legs
  land in the JSON so CI can watch the overhead stay at noise level.
* **sound degradation under pressure** — an already-expired deadline
  (0 ms) returns ``decided=False`` / ``degraded="deadline"`` after zero
  steps, and every reported bracket *contains* the fully-refined value
  from the no-deadline run (monotone shrinkage: earlier bounds are wider,
  never wrong).

The instance is pinned to SF 0.001 (independent of ``REPRO_TPCH_SF``):
step counts are a property of this exact workload.  Every measured call
builds a fresh engine so no run starts from another's refined store.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.deadline import Deadline
from repro.tpch import probabilistic_tpch
from repro.sprout import SproutEngine

from bench_shared_lineage import brand_query
from conftest import run_benchmark

K = 10
GENEROUS_MS = 60_000.0


@pytest.fixture(scope="module")
def robustness_db():
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


def _decide(db, deadline_ms):
    """One fresh-engine top-k decision; returns (result, fingerprint, secs)."""
    started = perf_counter()
    deadline = None if deadline_ms is None else Deadline.after_ms(deadline_ms)
    with SproutEngine(db, workers=0) as engine:
        result = engine.evaluate_topk(
            brand_query(), k=K, confidence="approx", deadline=deadline
        )
        seconds = perf_counter() - started
        store = engine.dtree_cache.store
        fingerprint = (
            sorted(result.confidences().items()),
            sorted(result.bounds.items()),
            result.decided,
            result.degraded,
            result.refine_steps,
            store.steps,
            store.table.bounds_fingerprint(),
        )
    return result, fingerprint, seconds


def test_generous_deadline_is_free_and_bit_identical(benchmark, robustness_db):
    """A deadline with headroom changes nothing: not a bit, not a step."""
    _, unbounded, unbounded_seconds = _decide(robustness_db, None)
    result, bounded, bounded_seconds = run_benchmark(
        benchmark, _decide, robustness_db, GENEROUS_MS
    )

    assert bounded == unbounded, "a generous deadline changed the decision"
    assert result.decided
    assert result.degraded is None
    assert result.refine_steps > 0

    benchmark.extra_info["refine_steps"] = unbounded[4]
    benchmark.extra_info["seconds_no_deadline"] = unbounded_seconds
    benchmark.extra_info["seconds_generous_deadline"] = bounded_seconds
    benchmark.extra_info["overhead_ratio"] = bounded_seconds / max(
        unbounded_seconds, 1e-12
    )


def test_expired_deadline_degrades_inside_the_monotone_envelope(
    benchmark, robustness_db
):
    """0 ms: no steps, degraded answer, every bracket contains the truth."""
    full, _, _ = _decide(robustness_db, None)
    # Ground truth for *every* answer: the top-k result keeps confidences
    # only for decided tuples, so the envelope check needs full marginals.
    with SproutEngine(robustness_db, workers=0) as engine:
        exact = engine.evaluate(brand_query()).confidences()
    cut, _, _ = run_benchmark(benchmark, _decide, robustness_db, 0.0)

    assert cut.decided is False
    assert cut.degraded == "deadline"
    assert cut.refine_steps == 0
    contained = 0
    for answer, (low, high) in cut.bounds.items():
        assert low - 1e-12 <= exact[answer] <= high + 1e-12, (
            f"deadline bracket [{low}, {high}] excludes the refined value "
            f"{exact[answer]} for {answer}"
        )
        contained += 1
    assert contained == len(exact)

    benchmark.extra_info["answers"] = contained
    benchmark.extra_info["full_refine_steps"] = full.refine_steps
    benchmark.extra_info["degraded_refine_steps"] = cut.refine_steps

"""Unsafe-query confidence: exact d-tree compilation vs. anytime approximation.

Non-hierarchical queries have no safe plan and no signature; the engine
answers them by compiling each tuple's DNF lineage into a decomposition tree.
This benchmark tracks the latency of that path on the canonical unsafe query

    q() :- part(partkey), partsupp(partkey, suppkey), supplier(suppkey)

over the probabilistic TPC-H instance (800 partsupp clauses at SF 0.001),
plus a synthetic hub-structured instance whose supplier dimension is wide
enough that exact compilation (and the memoised Shannon fallback of
``dnf_probability``) is intractable while the anytime bounds still converge
in milliseconds.  ``extra_info`` records the achieved bound width so the CI
artifact tracks approximation quality alongside latency.
"""

from __future__ import annotations

import pytest

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.prob.dtree import dtree_probability, karp_luby_probability
from repro.prob.synthetic import hub_lineage

from conftest import run_benchmark

EPSILONS = [0.05, 0.01, 0.001]


def unsafe_tpch_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        "unsafe_partsupp",
        [
            Atom("part", ["partkey"]),
            Atom("partsupp", ["partkey", "suppkey"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=[],
    )


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_unsafe_tpch_approx(benchmark, tpch_db, epsilon):
    """End-to-end engine latency of the anytime path on real TPC-H tables."""
    engine = SproutEngine(tpch_db)
    query = unsafe_tpch_query()
    result = run_benchmark(
        benchmark, engine.evaluate, query, confidence="approx", epsilon=epsilon
    )
    lower, upper = result.bounds[()]
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["clauses"] = result.answer_rows
    benchmark.extra_info["bound_width"] = upper - lower
    assert upper - lower <= 2 * epsilon + 1e-12


def test_unsafe_tpch_exact(benchmark, tpch_db):
    """Exact d-tree compilation on the same query (feasible: 10 supplier hubs)."""
    engine = SproutEngine(tpch_db)
    query = unsafe_tpch_query()
    result = run_benchmark(benchmark, engine.evaluate, query, plan="dtree")
    benchmark.extra_info["clauses"] = result.answer_rows
    benchmark.extra_info["confidence"] = result.boolean_confidence()


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_hub_lineage_approx(benchmark, epsilon):
    """Anytime bounds on the 25-hub instance where exact compilation blows up."""
    dnf, probabilities = hub_lineage()

    result = run_benchmark(
        benchmark, dtree_probability, dnf, probabilities, epsilon=epsilon
    )
    benchmark.extra_info["epsilon"] = epsilon
    benchmark.extra_info["clauses"] = len(dnf)
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["bound_width"] = result.gap
    assert result.gap <= 2 * epsilon + 1e-12


def test_hub_lineage_karp_luby(benchmark):
    """The Monte Carlo fallback on the same instance (5k samples)."""
    dnf, probabilities = hub_lineage()
    result = run_benchmark(
        benchmark, karp_luby_probability, dnf, probabilities, samples=5_000, seed=1
    )
    benchmark.extra_info["clauses"] = len(dnf)
    benchmark.extra_info["estimate"] = result.estimate
    benchmark.extra_info["half_width"] = result.half_width

"""Fig. 11: the rendez-vous of eager and lazy plans under varying selectivity.

Queries A and B of the paper are run while sweeping the selectivity of their
constant selections from roughly 0.1 to 0.9.  The paper's finding: lazy plans
win for small selectivities (few duplicates reach the final projection), eager
plans win once the selections become unselective and duplicates multiply
through the joins; the two curves cross in between.
"""

from __future__ import annotations

import pytest

from repro.tpch import query_A, query_B

from conftest import run_benchmark

#: Selection constants chosen to cover low / medium / high selectivity on the
#: generated data (supplier account balances are uniform in [-1000, 10000),
#: order total prices uniform in [850, 500000)).
ACCTBAL_THRESHOLDS = {0.1: 100.0, 0.3: 2300.0, 0.5: 4500.0, 0.7: 6700.0, 0.9: 8900.0}
PRICE_THRESHOLDS = {0.1: 50_000.0, 0.3: 150_000.0, 0.5: 250_000.0, 0.7: 350_000.0, 0.9: 450_000.0}


@pytest.mark.parametrize("selectivity", sorted(ACCTBAL_THRESHOLDS))
@pytest.mark.parametrize("plan", ["lazy", "eager"])
def test_fig11_query_A(benchmark, engine, selectivity, plan):
    query = query_A(ACCTBAL_THRESHOLDS[selectivity])
    result = run_benchmark(benchmark, engine.evaluate, query, plan=plan)
    benchmark.extra_info["query"] = "A"
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["selectivity"] = selectivity
    benchmark.extra_info["answer_rows"] = result.answer_rows
    benchmark.extra_info["distinct_tuples"] = result.distinct_tuples


@pytest.mark.parametrize("selectivity", sorted(PRICE_THRESHOLDS))
@pytest.mark.parametrize("plan", ["lazy", "eager"])
def test_fig11_query_B(benchmark, engine, selectivity, plan):
    query = query_B(PRICE_THRESHOLDS[selectivity])
    result = run_benchmark(benchmark, engine.evaluate, query, plan=plan)
    benchmark.extra_info["query"] = "B"
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["selectivity"] = selectivity
    benchmark.extra_info["answer_rows"] = result.answer_rows
    benchmark.extra_info["distinct_tuples"] = result.distinct_tuples

"""Streaming delta re-decide vs. from-scratch compilation (the PR 7 claim).

A standing top-k query over the shared-lineage DAG re-decides after a
probability update by re-seeding only the store rows carrying the updated
variable and repairing their ancestor closure (:mod:`repro.prob.delta`) —
the compiled DAG shape, the refined frontiers, and every untouched bound
survive.  This benchmark quantifies the claim on the unsafe TPC-H brand
query of ``bench_shared_lineage.py``

    q(p_brand) :- part(partkey, p_brand), partsupp(partkey, suppkey,
                  ps_availqty), supplier(suppkey), ps_availqty < 3000

and asserts the acceptance contract:

* after a single marginal update (nudging a variable of the weakest
  selected brand), the warm ``refresh()`` re-decides the top-10 set in
  **≥ 5× fewer logical steps** than the cold standing-query build — and
  than a fresh standing query compiled from the post-delta state;
* the warm answer is **bit-identical** to the fresh compilation: same
  decided set, same exact confidences — history changes the work, never
  the answer;
* a delete + re-insert of the weakest brand round-trips on warm rows
  (the re-insert interns onto the still-compiled subformulas).

The instance is pinned to SF 0.001 (independent of ``REPRO_TPCH_SF``):
step counts are a property of this exact workload and the contrast claim
is calibrated on it.  Logical steps are Shannon expansions plus the
exact-finishing refinement of selected tuples — the cold run pays both,
the warm refresh re-measures already-closed views and usually pays zero.
The timed callable alternates the updated marginal between two values so
every round applies a *real* delta (re-applying an identical value is a
store no-op and would time nothing); the asserted step counts are taken
from explicit one-delta measurements outside the timer.
"""

from __future__ import annotations

import pytest

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.sprout.streaming import StandingQuery
from repro.tpch import probabilistic_tpch

from conftest import run_benchmark

K = 10
AVAILQTY_CUT = 3000
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def streaming_db():
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


def brand_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        "unsafe_brands",
        [
            Atom("part", ["partkey", "p_brand"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([Comparison("ps_availqty", "<", AVAILQTY_CUT)]),
    )


def standing_watch(db) -> StandingQuery:
    """A standing brand top-10 with every knob pinned (CI legs vary the env)."""
    engine = SproutEngine(db, workers=0, shared_lineage=True)
    return engine.watch_topk(brand_query(), k=K)


def nudged_variable(watch: StandingQuery) -> int:
    """Deterministic target: the smallest variable of the weakest selected brand."""
    weakest = watch.selected[-1]
    return min(min(clause) for clause in watch.lineage[weakest].clauses)


def answer(watch: StandingQuery):
    return [tuple(row) for row in watch.result.relation]


def test_probability_update_redecides_warm(benchmark, streaming_db):
    """The headline: one marginal update re-decides in ≥ 5× fewer steps."""
    watch = standing_watch(streaming_db)
    assert watch.decided and len(watch.selected) == K
    cold_steps = watch.total_steps
    variable = nudged_variable(watch)
    base = watch.probabilities[variable]

    state = {"low": False}

    def warm_cycle():
        state["low"] = not state["low"]
        watch.update_probability(variable, base * (0.8 if state["low"] else 0.9))
        return watch.refresh()

    run_benchmark(benchmark, warm_cycle)

    # The asserted delta, measured explicitly: one real update, one refresh.
    report = watch.update_probability(variable, base * 0.85)
    assert report is not None and not report.is_noop
    warm = watch.refresh()
    assert warm.decided

    # A fresh standing query compiled from the post-delta state: the cold
    # cost of the answer the warm refresh just produced, and the oracle the
    # warm answer must match bit-for-bit.
    fresh = StandingQuery(dict(watch.lineage), dict(watch.probabilities), k=K)
    assert fresh.decided
    assert watch.selected == fresh.selected
    assert answer(watch) == answer(fresh)

    benchmark.extra_info["k"] = K
    benchmark.extra_info["candidates"] = len(watch)
    benchmark.extra_info["cold_steps"] = cold_steps
    benchmark.extra_info["warm_delta_steps"] = warm.delta_steps
    benchmark.extra_info["fresh_cold_steps"] = fresh.total_steps
    benchmark.extra_info["reseeded_rows"] = report.reseeded
    benchmark.extra_info["touched_nodes"] = len(report.touched)
    benchmark.extra_info["speedup_vs_cold"] = cold_steps / max(1, warm.delta_steps)

    # The acceptance claim: the warm re-decide beats both cold compilations
    # by at least the contracted factor.
    assert max(1, warm.delta_steps) * SPEEDUP_FLOOR <= cold_steps
    assert max(1, warm.delta_steps) * SPEEDUP_FLOOR <= fresh.total_steps


def test_delete_insert_round_trip_is_warm(benchmark, streaming_db):
    """Structural deltas ride the warm rows: retire + re-intern, few steps."""
    watch = standing_watch(streaming_db)
    cold_steps = watch.total_steps
    weakest = watch.selected[-1]
    dnf = watch.lineage[weakest]
    before = answer(watch)

    def round_trip():
        watch.delete_tuple(weakest)
        watch.refresh()
        steps = watch.delta_steps
        watch.insert_tuple(weakest, dnf)
        watch.refresh()
        return steps + watch.delta_steps

    trip_steps = round_trip()
    run_benchmark(benchmark, round_trip)
    assert answer(watch) == before  # the round trip restored the answer

    benchmark.extra_info["cold_steps"] = cold_steps
    benchmark.extra_info["round_trip_steps"] = trip_steps
    benchmark.extra_info["retired_nodes"] = watch._store.retired_nodes
    assert max(1, trip_steps) * SPEEDUP_FLOOR <= cold_steps

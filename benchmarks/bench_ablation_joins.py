"""Ablation: join algorithm choice in the deterministic substrate.

The plan comparisons of Figs. 9-12 rest on the substrate's joins behaving like
a conventional engine's.  This ablation compares the hash, sort-merge, and
nested-loop implementations on the customer ⋈ orders ⋈ lineitem join used by
queries 3/18 so that regressions in the substrate are visible next to the
higher-level benchmarks.
"""

from __future__ import annotations

import pytest

from repro.algebra.joins import HashJoinOp, MergeJoinOp, NestedLoopJoinOp
from repro.algebra.operators import ScanOp

from conftest import SCALE_FACTOR, run_benchmark

JOIN_CLASSES = {"hash": HashJoinOp, "merge": MergeJoinOp, "nested_loop": NestedLoopJoinOp}


@pytest.mark.parametrize("algorithm", ["hash", "merge", "nested_loop"])
def test_customer_orders_join(benchmark, tpch_db, algorithm):
    join_class = JOIN_CLASSES[algorithm]
    customer = tpch_db.relation("customer")
    orders = tpch_db.relation("orders")

    def run():
        join = join_class(ScanOp(customer), ScanOp(orders), on=["custkey"])
        return sum(1 for _ in join)

    rows = run_benchmark(benchmark, run)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["output_rows"] = rows
    benchmark.extra_info["scale_factor"] = SCALE_FACTOR


@pytest.mark.parametrize("algorithm", ["hash", "merge"])
def test_orders_lineitem_join(benchmark, tpch_db, algorithm):
    join_class = JOIN_CLASSES[algorithm]
    orders = tpch_db.relation("orders")
    lineitem = tpch_db.relation("lineitem")

    def run():
        join = join_class(ScanOp(orders), ScanOp(lineitem), on=["orderkey"])
        return sum(1 for _ in join)

    rows = run_benchmark(benchmark, run)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["output_rows"] = rows

"""Shared benchmark fixtures: one probabilistic TPC-H instance per session.

Scale factor and repetition count are controlled through environment
variables so that the harness can be dialled up on faster machines:

* ``REPRO_TPCH_SF``        — TPC-H scale factor (default 0.002; the paper uses 1.0)
* ``REPRO_BENCH_ROUNDS``   — rounds per benchmark (default 2)
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.safeplans import MystiqEngine  # noqa: E402
from repro.sprout import SproutEngine  # noqa: E402
from repro.tpch import probabilistic_tpch  # noqa: E402

SCALE_FACTOR = float(os.environ.get("REPRO_TPCH_SF", "0.002"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "2"))


def run_benchmark(benchmark, function, *args, **kwargs):
    """Run ``function`` under pytest-benchmark with a bounded number of rounds."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=ROUNDS, iterations=1)


@pytest.fixture(scope="session")
def tpch_db():
    return probabilistic_tpch(scale_factor=SCALE_FACTOR, seed=7, probability_seed=11)


@pytest.fixture(scope="session")
def engine(tpch_db):
    return SproutEngine(tpch_db)


@pytest.fixture(scope="session")
def mystiq(tpch_db):
    # The log-based aggregation and materialised temporaries reproduce the
    # middleware behaviour described in Section VII.
    return MystiqEngine(tpch_db, use_log_aggregation=True, materialize_temporaries=True)


@pytest.fixture(scope="session")
def mystiq_exact(tpch_db):
    return MystiqEngine(tpch_db, use_log_aggregation=False, materialize_temporaries=True)

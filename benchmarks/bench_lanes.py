"""Data-parallel refinement lanes over one shared lineage store (PR 9).

The shared-DAG scheduler now refines in planned rounds: the frontier is
ranked once, under the store lock, and the pure cofactor computations of a
round fan out across a :class:`repro.sprout.parallel.RefinementLanePool`
before commits land serially in plan order.  This benchmark pins the two
halves of that claim on the unsafe TPC-H brand query of
``bench_shared_lineage.py``:

* **bit-equality, always** — ``refine_lanes`` 0/1/4 on fresh engines
  produce identical decided sets, confidences, bounds, logical step counts,
  and raw IEEE-754 bound columns (``NodeTable.bounds_fingerprint``).  This
  is asserted unconditionally; it is the contract, not a best case.
* **throughput, when there is headroom** — wall-clock per lane count is
  recorded in the JSON on every run.  The speedup *assertion* is gated
  behind ``REPRO_ASSERT_SPEEDUP=1`` (plus ≥ 2 cores): lanes are threads,
  and on a GIL-bound CPython build the pure-Python cofactor work cannot
  overlap, so the 1-core CI container only tracks the numbers.  On builds
  where the cofactor kernels release the GIL (or free-threaded CPython)
  the knob turns the recorded ratio into a hard floor.

The instance is pinned to SF 0.001 (independent of ``REPRO_TPCH_SF``):
step counts are a property of this exact workload.  Every measured call
builds a fresh engine so no run starts from another's refined store.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.config import env_flag
from repro.tpch import probabilistic_tpch
from repro.sprout import SproutEngine

from bench_shared_lineage import brand_query
from conftest import run_benchmark

K = 10
TAU = 0.9
LANE_AXIS = (0, 1, 4)
SPEEDUP_FLOOR = 1.1
ASSERT_SPEEDUP = bool(env_flag("REPRO_ASSERT_SPEEDUP", default=False)) and (
    (os.cpu_count() or 1) >= 2
)


@pytest.fixture(scope="module")
def lanes_db():
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


def _decide(db, lanes, mode):
    """One fresh-engine decision; returns (fingerprint, wall seconds).

    The fingerprint is everything the determinism contract names: sorted
    confidences and bounds, the decided flag, per-call logical steps, the
    store's global step meter, and the node table's raw bound bytes.
    """
    started = perf_counter()
    with SproutEngine(db, workers=0, refine_lanes=lanes) as engine:
        if mode == "topk":
            result = engine.evaluate_topk(brand_query(), k=K, confidence="approx")
        else:
            result = engine.evaluate_threshold(
                brand_query(), tau=TAU, confidence="approx"
            )
        seconds = perf_counter() - started
        store = engine.dtree_cache.store
        fingerprint = (
            sorted(result.confidences().items()),
            sorted(result.bounds.items()),
            result.decided,
            result.refine_steps,
            store.steps,
            store.table.bounds_fingerprint(),
        )
    return fingerprint, seconds


def _lane_sweep(benchmark, db, mode):
    fingerprints, seconds = {}, {}
    for lanes in LANE_AXIS:
        fingerprints[lanes], seconds[lanes] = _decide(db, lanes, mode)

    result = run_benchmark(benchmark, _decide, db, LANE_AXIS[-1], mode)
    assert result[0] == fingerprints[LANE_AXIS[-1]]

    benchmark.extra_info["lane_axis"] = list(LANE_AXIS)
    benchmark.extra_info["refine_steps"] = fingerprints[0][3]
    benchmark.extra_info["store_steps"] = fingerprints[0][4]
    benchmark.extra_info["seconds_by_lanes"] = {
        str(lanes): seconds[lanes] for lanes in LANE_AXIS
    }
    benchmark.extra_info["speedup_lanes4"] = seconds[0] / max(seconds[4], 1e-12)
    benchmark.extra_info["cores"] = os.cpu_count() or 1
    benchmark.extra_info["speedup_asserted"] = ASSERT_SPEEDUP

    # The contract, asserted on every machine: the lane count may change
    # wall-clock, never a bit of the answer or a single logical step.
    for lanes in LANE_AXIS[1:]:
        assert fingerprints[lanes] == fingerprints[0], (
            f"{mode}: refine_lanes={lanes} diverged from the serial decision"
        )

    if ASSERT_SPEEDUP:
        assert seconds[0] / max(seconds[4], 1e-12) >= SPEEDUP_FLOOR
    return fingerprints[0]


def test_topk_lane_axis(benchmark, lanes_db):
    """Top-10 brand decision: lanes 0/1/4 bit-identical, timings tracked."""
    fingerprint = _lane_sweep(benchmark, lanes_db, "topk")
    assert fingerprint[2]  # the decision itself must land
    assert fingerprint[3] > 0  # and must actually exercise refinement


def test_threshold_lane_axis(benchmark, lanes_db):
    """τ-partition decision: same contract on the threshold route."""
    fingerprint = _lane_sweep(benchmark, lanes_db, "threshold")
    assert fingerprint[2]


def test_round_width_batches_the_frontier(benchmark, lanes_db):
    """The round planner hands whole batches to the lanes.

    ``refine_round(views, width)`` must advance up to ``width`` distinct
    leaves per propagation pass — that batching is what gives the lanes
    parallel work per round — while ``refine_most_valuable`` stays exactly
    the width-1 special case the pre-lane scheduler shipped.
    """
    from repro.prob.formulas import DNF
    from repro.prob.sharedag import SharedDTree, SharedLineageStore

    def build():
        store = SharedLineageStore()
        probabilities = {v: 0.05 * (v % 9 + 3) for v in range(24)}
        views = []
        for base in range(0, 18, 3):
            dnf = DNF([[base, base + 1], [base + 1, base + 2], [base + 2, base + 3]])
            store.add_probabilities(dnf, probabilities)
            views.append(SharedDTree(store, dnf))
        return store, views

    def drain_rounds(width):
        store, views = build()
        rounds = 0
        while store.refine_round(views, width):
            rounds += 1
        return store, views, rounds

    serial_store, serial_views, serial_rounds = drain_rounds(1)
    batched_store, batched_views, batched_rounds = run_benchmark(
        benchmark, drain_rounds, 4
    )

    benchmark.extra_info["serial_rounds"] = serial_rounds
    benchmark.extra_info["batched_rounds"] = batched_rounds
    benchmark.extra_info["steps"] = serial_store.steps

    # Same total logical work and, at closure, the same exact brackets per
    # view — batching only changes how many propagation passes carry it
    # (the drain order, and with it the node numbering, legitimately moves).
    assert batched_store.steps == serial_store.steps
    for serial_view, batched_view in zip(serial_views, batched_views):
        assert batched_view.bounds() == serial_view.bounds()
    assert batched_rounds < serial_rounds

"""Top-k/threshold bound pruning vs. uniform per-tuple epsilon refinement.

The multi-tuple scheduler (:mod:`repro.sprout.topk`) refines only the tuples
whose brackets gate the answer-set decision.  This benchmark quantifies the
saving on an unsafe TPC-H query

    q(p_brand) :- part(partkey, p_brand), partsupp(partkey, suppkey,
                  ps_availqty), supplier(suppkey), ps_availqty < 3000

(non-hierarchical: partkey and suppkey each cross two atoms) whose 25 brand
confidences spread over [0.5, 0.99].  The baseline refines all 25 tuples to
epsilon=0.01; ``evaluate_topk(k=10)`` must *provably decide* the top-10 set in
measurably fewer d-tree expansion steps — the assertion the CI artifact
tracks.  The instance is pinned to SF 0.001 (independent of
``REPRO_TPCH_SF``): step counts are a property of this exact workload, and
the contrast claim is calibrated on it.

Each measured call builds a fresh engine: the shared lineage → d-tree cache
would otherwise let later rounds start from already refined trees and report
zero steps.
"""

from __future__ import annotations

import pytest

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.tpch import probabilistic_tpch

from conftest import run_benchmark

K = 10
EPSILON = 0.01
TAU = 0.9
AVAILQTY_CUT = 3000


@pytest.fixture(scope="module")
def pruning_db():
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


def brand_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        "unsafe_brands",
        [
            Atom("part", ["partkey", "p_brand"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([Comparison("ps_availqty", "<", AVAILQTY_CUT)]),
    )


def test_full_epsilon_refinement(benchmark, pruning_db):
    """Baseline: every tuple refined to the uniform epsilon budget."""
    result = run_benchmark(
        benchmark,
        lambda: SproutEngine(pruning_db).evaluate(
            brand_query(), confidence="approx", epsilon=EPSILON
        ),
    )
    benchmark.extra_info["tuples"] = result.distinct_tuples
    benchmark.extra_info["refine_steps"] = result.refine_steps
    assert result.distinct_tuples == 25


def test_topk_bound_pruning(benchmark, pruning_db):
    """Top-k decision with bound pruning: provably decided, fewer steps."""
    query = brand_query()
    baseline = SproutEngine(pruning_db).evaluate(
        query, confidence="approx", epsilon=EPSILON
    )
    result = run_benchmark(
        benchmark,
        lambda: SproutEngine(pruning_db).evaluate_topk(
            query, k=K, confidence="approx"
        ),
    )
    benchmark.extra_info["k"] = K
    benchmark.extra_info["refine_steps"] = result.refine_steps
    benchmark.extra_info["baseline_steps"] = baseline.refine_steps
    assert result.decided
    assert result.distinct_tuples == K
    # The acceptance claim: deciding the top-10 set takes measurably fewer
    # d-tree expansions than refining all 25 tuples to epsilon=0.01.
    assert result.refine_steps < baseline.refine_steps
    # The decided set must dominate: no excluded tuple's upper bound may beat
    # a selected tuple's lower bound.
    selected = set(result.confidences())
    excluded_upper = max(
        upper for data, (_, upper) in result.bounds.items() if data not in selected
    )
    selected_lower = min(
        lower for data, (lower, _) in result.bounds.items() if data in selected
    )
    assert selected_lower >= excluded_upper


def test_topk_exact_finishing(benchmark, pruning_db):
    """Exact mode: decide via bounds, then refine only the winners to exactness."""
    result = run_benchmark(
        benchmark,
        lambda: SproutEngine(pruning_db).evaluate_topk(brand_query(), k=K),
    )
    benchmark.extra_info["refine_steps"] = result.refine_steps
    assert result.decided
    for data, _ in result.confidences().items():
        lower, upper = result.bounds[data]
        assert upper - lower <= 1e-12


def test_threshold_partition(benchmark, pruning_db):
    """τ-partition latency and steps (tracked, not asserted against baseline)."""
    result = run_benchmark(
        benchmark,
        lambda: SproutEngine(pruning_db).evaluate_threshold(brand_query(), tau=TAU),
    )
    benchmark.extra_info["tau"] = TAU
    benchmark.extra_info["refine_steps"] = result.refine_steps
    benchmark.extra_info["selected"] = result.distinct_tuples
    assert result.decided
    for data, (lower, upper) in result.bounds.items():
        if data in set(result.confidences()):
            assert lower >= TAU - 1e-12
        else:
            assert upper < TAU + 1e-12


def test_repeat_topk_hits_dtree_cache(benchmark, pruning_db):
    """A second top-k over the same lineage reuses the refined trees."""
    engine = SproutEngine(pruning_db)
    engine.evaluate_topk(brand_query(), k=K)  # warm the cache

    result = run_benchmark(benchmark, engine.evaluate_topk, brand_query(), K)
    benchmark.extra_info["refine_steps"] = result.refine_steps
    benchmark.extra_info["cache_hits"] = engine.dtree_cache.hits
    assert result.decided
    assert result.refine_steps == 0
    assert engine.dtree_cache.hits > 0

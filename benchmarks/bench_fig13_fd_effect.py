"""Fig. 13: the effect of functional dependencies on the operator itself.

For queries 2, 7, 11 and B3 the paper compares, on the materialised answer of
the query: the time of a plain sequential scan, the time to sort the answer in
the operator's order, and the time of the confidence operator with and without
the TPC-H FDs (which decide how many scans it needs).  Paper numbers
(scale factor 1, seconds):

    query   seqscan   sort   operator(no FDs)   operator(FDs)   #rows   #distinct
    2          0.02    0.03              0.20            0.09     642         642
    7          0.02    0.07              0.66            0.02    5924         796
    11         0.09    0.12              4.23            0.40   31680       29818
    B3         0.01    0.03              0.05            0.03    4488           1
"""

from __future__ import annotations

import pytest

from repro.query.signature import fully_starred, num_scans
from repro.sprout.onescan import sort_column_order
from repro.sprout.planner import build_answer_plan, project_answer_columns
from repro.sprout.scans import apply_scan_schedule
from repro.tpch import FIGURE13_KEYS, tpch_query

from conftest import run_benchmark

PAPER = {
    "2": {"seqscan": 0.02, "sort": 0.03, "no_fds": 0.20, "fds": 0.09, "rows": 642, "distinct": 642},
    "7": {
        "seqscan": 0.02, "sort": 0.07, "no_fds": 0.66, "fds": 0.02,
        "rows": 5924, "distinct": 796,
    },
    "11": {
        "seqscan": 0.09, "sort": 0.12, "no_fds": 4.23, "fds": 0.40,
        "rows": 31680, "distinct": 29818,
    },
    "B3": {"seqscan": 0.01, "sort": 0.03, "no_fds": 0.05, "fds": 0.03, "rows": 4488, "distinct": 1},
}


@pytest.fixture(scope="module")
def materialised_answers(tpch_db, engine):
    """Materialise each query's answer once, as the lazy plan would."""
    answers = {}
    for key in FIGURE13_KEYS:
        query = tpch_query(key).query
        order = engine.planner.lazy_join_order(query)
        plan = project_answer_columns(build_answer_plan(tpch_db, query, order), query)
        answers[key] = (query, plan.to_relation(query.name))
    return answers


@pytest.mark.parametrize("key", FIGURE13_KEYS)
def test_fig13_seqscan(benchmark, materialised_answers, key):
    _, answer = materialised_answers[key]

    def scan():
        count = 0
        for _ in answer.rows:
            count += 1
        return count

    rows = run_benchmark(benchmark, scan)
    benchmark.extra_info["query"] = key
    benchmark.extra_info["answer_rows"] = rows
    benchmark.extra_info["paper_seconds_sf1"] = PAPER[key]["seqscan"]


@pytest.mark.parametrize("key", FIGURE13_KEYS)
def test_fig13_sorting(benchmark, engine, materialised_answers, key):
    query, answer = materialised_answers[key]
    signature = engine.signature_for(query, use_fds=True)
    order = sort_column_order(answer.schema, signature)
    run_benchmark(benchmark, answer.sorted_by, order)
    benchmark.extra_info["query"] = key
    benchmark.extra_info["paper_seconds_sf1"] = PAPER[key]["sort"]


@pytest.mark.parametrize("key", FIGURE13_KEYS)
@pytest.mark.parametrize("use_fds", [False, True], ids=["no_fds", "with_fds"])
def test_fig13_operator(benchmark, engine, materialised_answers, key, use_fds):
    query, answer = materialised_answers[key]
    # "Without FDs" means: the key constraints are not used to refine the
    # signature, so every relationship is treated as many-to-many and the
    # operator needs extra pre-aggregation scans (Section VII, experiment 3).
    refined = engine.signature_for(query, use_fds=True)
    signature = refined if use_fds else fully_starred(refined)

    def compute():
        return apply_scan_schedule(answer, signature)

    result, schedule = run_benchmark(benchmark, compute)
    benchmark.extra_info["query"] = key
    benchmark.extra_info["use_fds"] = use_fds
    benchmark.extra_info["scans"] = schedule.total_scans
    benchmark.extra_info["signature"] = str(signature)
    benchmark.extra_info["answer_rows"] = len(answer)
    benchmark.extra_info["distinct_tuples"] = len(result)
    benchmark.extra_info["paper_seconds_sf1"] = PAPER[key]["fds" if use_fds else "no_fds"]
    # With FDs the signatures of these four queries need a single scan, never
    # more than without FDs (the effect Fig. 13 demonstrates).
    if use_fds:
        assert schedule.total_scans == 1
    assert num_scans(refined) <= num_scans(fully_starred(refined))

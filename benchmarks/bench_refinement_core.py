"""The columnar refinement core: vectorized passes vs. scalar (the PR 6 claim).

The probabilistic core now stores d-tree nodes in a columnar
:class:`repro.prob.nodetable.NodeTable` — kinds, child ranges, and bound
columns in parallel flat arrays — and propagates bounds in batched
per-level passes instead of per-node recursion.  With NumPy installed the
per-level pass runs as masked array kernels; without it an ``array``-module
scalar sweep computes the same thing.  This benchmark quantifies the claim
on the unsafe TPC-H brand query of ``bench_shared_lineage.py``

    q(p_brand) :- part(partkey, p_brand), partsupp(partkey, suppkey,
                  ps_availqty), supplier(suppkey), ps_availqty < 3000

pinned to SF 0.001, and asserts the acceptance contract:

* a full-table bound-propagation sweep (``refresh_all_bounds``) over the
  refined shared store runs **≥ 2× faster** under the NumPy backend than
  under the scalar backend (asserted only when NumPy is importable — the
  pure-Python leg records the scalar timing and skips the ratio gate);
* the two backends are **bit-identical**: the sweep leaves float-for-float
  the same bound columns behind, and full engine runs (top-k decision plus
  exact confidences) agree on confidences, bounds, decided sets, and step
  counts with ``vectorize`` on and off;
* shared-lineage top-k with ``workers=4`` returns bit-identical results
  *and step counts* to ``workers=0`` — the columnar store ships to the
  worker as a segment and replays the identical logical schedule.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.prob.backend import HAS_NUMPY, backend_info
from repro.prob.lineage import dtrees_from_dnfs
from repro.prob.sharedag import SharedDTreeCache
from repro.tpch import probabilistic_tpch

from conftest import run_benchmark

K = 10
AVAILQTY_CUT = 3000
VECTOR_SPEEDUP_FLOOR = 2.0
SWEEP_REPEATS = 50


@pytest.fixture(scope="module")
def core_db():
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


def brand_query(availqty_cut: int = AVAILQTY_CUT) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        "unsafe_brands",
        [
            Atom("part", ["partkey", "p_brand"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([Comparison("ps_availqty", "<", availqty_cut)]),
    )


def refined_store(db):
    """Compile the full brand-query lineage into a shared store and refine it.

    Mirrors what a top-k decision leaves behind: the store holds the
    hash-consed DAG for every candidate with partially refined bounds —
    the table a propagation sweep has to traverse.  The availqty cut is
    lifted so every partsupp clause participates (~10k table rows at
    SF 0.001); the decision-phase tests below keep the selective cut.
    """
    with SproutEngine(db, workers=0, shared_lineage=True) as engine:
        answer = engine._answer_lineage(brand_query(10**9), None, "row")
    cache = SharedDTreeCache(vectorize=False)
    trees = dtrees_from_dnfs(answer.lineage, answer.probabilities, cache=cache)
    for tree in trees.values():
        tree.refine(64)
    return cache.store


def sweep_seconds(table, vectorize, repeats=SWEEP_REPEATS):
    started = perf_counter()
    for _ in range(repeats):
        table.refresh_all_bounds(vectorize=vectorize)
    return (perf_counter() - started) / repeats


def result_fingerprint(result):
    return (
        tuple(sorted(result.confidences().items())),
        tuple(sorted(result.bounds.items())),
        result.refine_steps,
        result.decided,
    )


def test_vectorized_sweep_throughput(benchmark, core_db):
    """The headline: the NumPy per-level pass beats the scalar sweep ≥ 2×."""
    store = refined_store(core_db)
    table = store.table

    before = (list(table.lower), list(table.upper))
    scalar_seconds = sweep_seconds(table, vectorize=False)
    vector_seconds = sweep_seconds(table, vectorize=True)
    # Bit-identical columns: propagation is idempotent on a refined table,
    # and the NumPy kernels replicate the scalar arithmetic exactly.
    assert (list(table.lower), list(table.upper)) == before

    run_benchmark(benchmark, table.refresh_all_bounds, vectorize=HAS_NUMPY)

    benchmark.extra_info["backend"] = backend_info()["backend"]
    benchmark.extra_info["numpy_available"] = HAS_NUMPY
    benchmark.extra_info["table_nodes"] = len(table)
    benchmark.extra_info["table_edges"] = len(table.edge_child)
    benchmark.extra_info["store_steps"] = store.steps
    benchmark.extra_info["scalar_sweep_seconds"] = scalar_seconds
    benchmark.extra_info["vector_sweep_seconds"] = vector_seconds
    benchmark.extra_info["vector_speedup"] = scalar_seconds / max(vector_seconds, 1e-12)

    if not HAS_NUMPY:
        pytest.skip("NumPy not installed — scalar timing recorded, ratio gate skipped")
    # The acceptance claim: ≥ 2x refinement-pass throughput from the
    # vectorized backend on the unsafe TPC-H table at SF 0.001.
    assert scalar_seconds >= VECTOR_SPEEDUP_FLOOR * vector_seconds


def test_backends_bit_identical_end_to_end(benchmark, core_db):
    """Engine runs with ``vectorize`` on and off agree to the bit."""
    def decide(vectorize):
        with SproutEngine(
            core_db, workers=0, shared_lineage=True, vectorize=vectorize
        ) as engine:
            topk = engine.evaluate_topk(brand_query(), k=K)
            approx = engine.evaluate_topk(brand_query(), k=K, confidence="approx")
        return result_fingerprint(topk) + result_fingerprint(approx)

    scalar = decide(False)
    vectorized = run_benchmark(benchmark, decide, HAS_NUMPY)
    benchmark.extra_info["k"] = K
    benchmark.extra_info["refine_steps"] = scalar[2]
    benchmark.extra_info["backends_identical"] = scalar == vectorized
    assert scalar == vectorized


def test_shared_parallel_matches_serial_step_counts(benchmark, core_db):
    """workers=4 with shared lineage: same answer, same logical steps."""
    def decide(workers):
        with SproutEngine(
            core_db, workers=workers, shared_lineage=True
        ) as engine:
            return result_fingerprint(engine.evaluate_topk(brand_query(), k=K))

    serial = decide(0)
    parallel = run_benchmark(benchmark, decide, 4)
    benchmark.extra_info["k"] = K
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["refine_steps"] = serial[2]
    benchmark.extra_info["parallel_identical"] = serial == parallel
    assert serial == parallel
    assert serial[3] and parallel[3]

"""Parallel confidence computation: speedup and bit-equality vs. serial.

The parallel executor (:mod:`repro.sprout.parallel`) partitions the answer
tuples of the unsafe TPC-H brand query

    q(p_brand) :- part(partkey, p_brand), partsupp(partkey, suppkey,
                  ps_availqty), supplier(suppkey), ps_availqty < 3000

across worker processes and refines each tuple's d-tree to ``epsilon=0.01``.
Two claims are pinned:

* **bit-equality** — asserted unconditionally: ``workers=4`` returns the
  same tuple set, the same confidences, and the same bounds as the serial
  run (same engine seed), down to the last bit.
* **speedup** — serial vs. 4 workers on warm pools must reach ``>= 1.5x``.
  The assertion arms on machines with core *headroom* (more usable cores
  than workers, so the driver and noisy neighbours cannot starve the pool —
  shared 4-vCPU CI runners must not flake the push gate), or anywhere with
  ``REPRO_ASSERT_SPEEDUP=1``.  The measured ratio is always recorded in the
  benchmark JSON via ``extra_info``, so the CI artifact tracks the
  trajectory either way.

The instance is pinned to SF 0.02 (independent of ``REPRO_TPCH_SF``): large
enough that per-tuple d-tree work dominates the pool's IPC overhead, small
enough for CI.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro import Atom, ConjunctiveQuery, SproutEngine
from repro.algebra import Comparison, conjunction_of
from repro.tpch import probabilistic_tpch

from conftest import ROUNDS, run_benchmark

EPSILON = 0.01
WORKERS = 4
SPEEDUP_FLOOR = 1.5
AVAILQTY_CUT = 3000
SCALE_FACTOR = 0.02


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def parallel_db():
    return probabilistic_tpch(scale_factor=SCALE_FACTOR, seed=7, probability_seed=11)


@pytest.fixture(scope="module")
def shared_engine(parallel_db):
    """One engine for the timed tests, so the pool and the planner statistics
    are warmed once and the measurements compare confidence work only."""
    engine = SproutEngine(parallel_db, workers=WORKERS, seed=0)
    yield engine
    engine.close()


def brand_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        "unsafe_brands",
        [
            Atom("part", ["partkey", "p_brand"]),
            Atom("partsupp", ["partkey", "suppkey", "ps_availqty"]),
            Atom("supplier", ["suppkey"]),
        ],
        projection=["p_brand"],
        selections=conjunction_of([Comparison("ps_availqty", "<", AVAILQTY_CUT)]),
    )


def evaluate(db, workers):
    engine = SproutEngine(db, workers=workers, seed=0)
    try:
        return engine.evaluate(brand_query(), confidence="approx", epsilon=EPSILON)
    finally:
        engine.close()


def test_parallel_equals_serial_bitwise(parallel_db):
    """workers=4 must reproduce the serial run bit for bit (same seed)."""
    serial = evaluate(parallel_db, workers=0)
    parallel = evaluate(parallel_db, workers=WORKERS)
    assert serial.confidences() == parallel.confidences()
    assert serial.bounds == parallel.bounds
    assert serial.refine_steps == parallel.refine_steps
    assert list(serial.relation.rows) == list(parallel.relation.rows)


def test_serial_baseline(benchmark, shared_engine):
    """Baseline latency: every tuple refined to epsilon in-process."""
    result = run_benchmark(
        benchmark,
        shared_engine.evaluate,
        brand_query(),
        confidence="approx",
        epsilon=EPSILON,
        workers=0,
    )
    benchmark.extra_info["tuples"] = result.distinct_tuples
    benchmark.extra_info["refine_steps"] = result.refine_steps
    assert result.distinct_tuples > 0


def test_parallel_speedup(benchmark, shared_engine):
    """4-worker latency; asserts >= 1.5x given core headroom (or if forced)."""
    cores = usable_cores()
    assert_speedup = (
        cores > WORKERS or os.environ.get("REPRO_ASSERT_SPEEDUP") == "1"
    )
    # Warm the pool (fork + import cost must not pollute the measurement),
    # then time both modes through the same engine.
    shared_engine.evaluate(brand_query(), confidence="approx", epsilon=EPSILON)

    # Both sides are best-of-three (regardless of REPRO_BENCH_ROUNDS): the
    # speedup assertion gates CI, so a single noisy-neighbour sample on a
    # shared runner must not be able to deflate the ratio.
    measure_rounds = max(ROUNDS, 3)
    serial_seconds = float("inf")
    for _ in range(measure_rounds):
        started = perf_counter()
        serial = shared_engine.evaluate(
            brand_query(), confidence="approx", epsilon=EPSILON, workers=0
        )
        serial_seconds = min(serial_seconds, perf_counter() - started)

    result = benchmark.pedantic(
        shared_engine.evaluate,
        args=(brand_query(),),
        kwargs={"confidence": "approx", "epsilon": EPSILON},
        rounds=measure_rounds,
        iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.min
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["speedup"] = speedup
    assert serial.confidences() == result.confidences()
    assert serial.bounds == result.bounds
    if assert_speedup:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup with {WORKERS} workers "
            f"on {cores} cores, measured {speedup:.2f}x"
        )

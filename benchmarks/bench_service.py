"""Cross-request warm-state reuse through the query service (the PR 8 claim).

The service multiplexes every client over ONE engine and ONE shared-lineage
store, so refinement work done for any request is standing capital for all
later ones.  This benchmark drives the *full* stack — asyncio HTTP server,
JSON round trip, admission queue, refinement lane — on the unsafe TPC-H
brand top-10 of ``bench_shared_lineage.py`` at pinned SF 0.001, and asserts
the acceptance contract:

* the first (cold) top-10 request pays the d-tree compilation; a repeat of
  the same request over HTTP re-decides in **at most 1 logical step** —
  the decided frontier survives in the shared store between requests;
* N concurrent clients asking the same question cost the store *zero*
  additional logical steps once one of them has paid — sharing is
  per-store, not per-connection;
* a standing-query subscription served over HTTP absorbs a probability
  update and re-decides warm, far below its own cold build cost.

Wall times cover the HTTP stack and are machine-dependent; the asserted
quantities are logical step counts read from the service's responses and
``/stats``, which are deterministic for this pinned workload.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import QueryService, ServiceClient, ServiceServer, arequest
from repro.tpch import probabilistic_tpch

from conftest import run_benchmark

K = 10
CLIENTS = 4
BRAND_SQL = "SELECT p_brand, conf() FROM part, partsupp, supplier WHERE ps_availqty < 3000"


@pytest.fixture(scope="module")
def service_db():
    # Pinned independently of REPRO_TPCH_SF: the step-count contract is a
    # property of this exact instance.
    return probabilistic_tpch(scale_factor=0.001, seed=7, probability_seed=11)


@pytest.fixture
def server(service_db):
    with ServiceServer(QueryService(service_db)) as srv:
        yield srv


def test_topk_over_http_is_warm_after_first(benchmark, server):
    """The headline: a repeated top-10 request costs <= 1 logical step."""
    client = ServiceClient(server.host, server.port)
    cold = client.topk(BRAND_SQL, k=K)
    assert cold["decided"] and len(cold["rows"]) == K
    assert cold["refine_steps"] > 0

    warm = client.topk(BRAND_SQL, k=K)
    assert warm["rows"] == cold["rows"]
    assert warm["refine_steps"] <= 1  # the cross-request warm-reuse contract

    run_benchmark(benchmark, client.topk, BRAND_SQL, k=K)

    benchmark.extra_info["k"] = K
    benchmark.extra_info["candidates"] = len(cold["bounds"])
    benchmark.extra_info["cold_steps"] = cold["refine_steps"]
    benchmark.extra_info["warm_steps"] = warm["refine_steps"]


def test_concurrent_clients_share_warm_state(benchmark, server):
    """N clients, one store: the N-1 followers pay zero store steps."""
    client = ServiceClient(server.host, server.port)

    def storm():
        async def run():
            return await asyncio.gather(
                *(
                    arequest(server.host, server.port, "POST", "/topk",
                             {"sql": BRAND_SQL, "k": K})
                    for _ in range(CLIENTS)
                )
            )

        return asyncio.run(run())

    before = client.stats()["store"]["steps"]
    responses = storm()
    cold_storm_steps = client.stats()["store"]["steps"] - before
    rows = [payload["rows"] for status, payload in responses if status == 200]
    assert len(rows) == CLIENTS
    assert all(r == rows[0] for r in rows)  # every client got the same answer
    assert cold_storm_steps > 0  # exactly one of them paid the compilation

    warm_before = client.stats()["store"]["steps"]
    storm()
    warm_storm_steps = client.stats()["store"]["steps"] - warm_before
    assert warm_storm_steps == 0  # the whole warm storm is free at the store

    run_benchmark(benchmark, storm)

    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["cold_storm_steps"] = cold_storm_steps
    benchmark.extra_info["warm_storm_steps"] = warm_storm_steps


def test_subscription_update_over_http(benchmark, server):
    """A served standing query absorbs a delta far below its build cost."""
    client = ServiceClient(server.host, server.port)
    sub = client.subscribe(BRAND_SQL, k=K)
    assert sub["decided"] and len(sub["selected"]) == K
    cold_steps = sub["total_steps"]
    assert cold_steps > 0
    variable = sub["variables"][0]

    state = {"low": False}

    def update_cycle():
        # Alternate between two values so every round applies a real delta.
        state["low"] = not state["low"]
        return client.update(
            sub["subscription"], variable, 0.2 if state["low"] else 0.3
        )

    first = update_cycle()
    assert first["decided"]
    assert first["report"]["noop"] is False
    update_delta_steps = first["delta_steps"]
    assert update_delta_steps < cold_steps  # warm re-decide, not a rebuild

    run_benchmark(benchmark, update_cycle)

    benchmark.extra_info["k"] = K
    benchmark.extra_info["cold_steps"] = cold_steps
    benchmark.extra_info["update_delta_steps"] = update_delta_steps

"""Section VI case study: static classification of the 22 TPC-H queries.

Benchmarks the static analysis (hierarchy test, FD-reduct, signature
derivation, scan counting) over the whole query set and records the resulting
classification counts next to the paper's reported ones.
"""

from __future__ import annotations

from repro.tpch.casestudy import classify_all
from repro.tpch.queries import excluded_query_keys
from repro.tpch.schema import tpch_functional_dependencies

from conftest import run_benchmark


def test_case_study_classification(benchmark):
    fds = tpch_functional_dependencies()
    classifications = run_benchmark(benchmark, classify_all, fds)

    non_boolean = [c for c in classifications.values() if not c.boolean and c.executable]
    boolean = [c for c in classifications.values() if c.boolean and c.executable]
    counts = {
        "orig_hierarchical_without_fds": sum(1 for c in non_boolean if c.hierarchical_without_fds),
        "orig_tractable_with_fds": sum(1 for c in non_boolean if c.tractable),
        "boolean_hierarchical_without_fds": sum(1 for c in boolean if c.hierarchical_without_fds),
        "boolean_tractable_with_fds": sum(1 for c in boolean if c.tractable),
        "excluded": sorted(excluded_query_keys()),
    }
    benchmark.extra_info.update(counts)
    benchmark.extra_info["paper"] = (
        "13/22 (orig) and 8/22 (non-key) hierarchical without keys, "
        "+4 each with the TPC-H keys; 5, 8, 9, 13, 22 excluded"
    )

    # Shape checks: the FDs strictly extend the tractable class, and the five
    # excluded queries stay excluded.
    assert counts["orig_tractable_with_fds"] > counts["orig_hierarchical_without_fds"]
    assert counts["boolean_tractable_with_fds"] > counts["boolean_hierarchical_without_fds"]
    assert {"5", "8", "9", "13", "22"} <= set(counts["excluded"])

"""Ablation: the scan-based operator versus the literal GRP-sequence semantics.

Not a figure of the paper, but the design choice Section V.C motivates: the
semantics of the operator (Fig. 5) suggests one independent aggregation pass
per signature star, whereas the implementation groups them into as few scans
as the signature allows.  This ablation measures both on the same materialised
answers.
"""

from __future__ import annotations

import pytest

from repro.sprout.conf_operator import apply_semantics
from repro.sprout.onescan import sort_column_order
from repro.sprout.planner import build_answer_plan, project_answer_columns
from repro.sprout.scans import apply_scan_schedule
from repro.tpch import tpch_query

from conftest import run_benchmark

KEYS = ["3", "18", "B17", "10"]


@pytest.fixture(scope="module")
def sorted_answers(tpch_db, engine):
    answers = {}
    for key in KEYS:
        query = tpch_query(key).query
        order = engine.planner.lazy_join_order(query)
        plan = project_answer_columns(build_answer_plan(tpch_db, query, order), query)
        answer = plan.to_relation(query.name)
        signature = engine.signature_for(query)
        answer = answer.sorted_by(sort_column_order(answer.schema, signature))
        answers[key] = (signature, answer)
    return answers


@pytest.mark.parametrize("key", KEYS)
@pytest.mark.parametrize("method", ["scans", "semantics"])
def test_conf_method_ablation(benchmark, sorted_answers, key, method):
    signature, answer = sorted_answers[key]

    if method == "scans":
        result = run_benchmark(benchmark, apply_scan_schedule, answer, signature, presorted=True)
        distinct = len(result[0])
    else:
        result = run_benchmark(benchmark, apply_semantics, answer, signature)
        distinct = len(result.relation)

    benchmark.extra_info["query"] = key
    benchmark.extra_info["method"] = method
    benchmark.extra_info["signature"] = str(signature)
    benchmark.extra_info["answer_rows"] = len(answer)
    benchmark.extra_info["distinct_tuples"] = distinct

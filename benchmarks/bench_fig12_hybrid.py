"""Fig. 12: hybrid plans versus the eager and lazy extremes.

The paper reports (scale factor 1, seconds):

    query   eager   lazy   hybrid   eager/hybrid   lazy/hybrid
    C       71.10   5.22     4.02          17.69           1.3
    D        1.16   0.78     0.52           2.23           1.5

Hybrid plans avoid the eager aggregation of the large tables (lineitem,
partsupp) but still aggregate intermediate join results before the final join,
beating both extremes.
"""

from __future__ import annotations

import pytest

from repro.tpch import query_C, query_D

from conftest import run_benchmark

PAPER_SECONDS = {
    "C": {"eager": 71.10, "lazy": 5.22, "hybrid": 4.02},
    "D": {"eager": 1.16, "lazy": 0.78, "hybrid": 0.52},
}

QUERIES = {"C": query_C, "D": query_D}


@pytest.mark.parametrize("name", ["C", "D"])
@pytest.mark.parametrize("plan", ["eager", "lazy", "hybrid"])
def test_fig12_plans(benchmark, engine, name, plan):
    query = QUERIES[name]()
    result = run_benchmark(benchmark, engine.evaluate, query, plan=plan)
    benchmark.extra_info["query"] = name
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["distinct_tuples"] = result.distinct_tuples
    benchmark.extra_info["rows_processed"] = result.rows_processed
    benchmark.extra_info["paper_seconds_sf1"] = PAPER_SECONDS[name][plan]

"""Fig. 9: lazy vs. eager vs. MystiQ plans on eight TPC-H queries.

The paper reports (scale factor 1, seconds):

    query     MystiQ   eager   lazy
    3          292.9    30.5   22.1
    10         120.9    28.9    4.8
    15           2.9     2.9    3.2
    16           4.9     2.3    0.4
    B17        283.1    30.7    2.4
    18         400.1    55.0   17.2
    20          11.2     5.4    0.5
    21         303.5    96.1    6.7

The reproduction runs at a much smaller scale factor on a pure-Python engine,
so absolute numbers differ; the *shape* to check is that lazy plans win on the
selective queries (10, 16, B17, 18, 20, 21) and that MystiQ never beats the
SPROUT plans.  Answer sizes are attached as ``extra_info``.

On top of the paper's figure, every SPROUT plan is benchmarked in both
execution modes (``row`` vs ``batch``) so the speedup of the columnar backend
is recorded alongside the plan-style comparison; the batch lazy plan should
run at least ~2x faster than the row lazy plan (typically 3-7x at SF >= 0.01).
"""

from __future__ import annotations

import pytest

from repro.errors import NumericalError, UnsafePlanError
from repro.tpch import FIGURE9_KEYS, tpch_query

from conftest import run_benchmark

PAPER_SECONDS = {
    "3": {"mystiq": 292.9, "eager": 30.5, "lazy": 22.1},
    "10": {"mystiq": 120.9, "eager": 28.9, "lazy": 4.8},
    "15": {"mystiq": 2.9, "eager": 2.9, "lazy": 3.2},
    "16": {"mystiq": 4.9, "eager": 2.3, "lazy": 0.4},
    "B17": {"mystiq": 283.1, "eager": 30.7, "lazy": 2.4},
    "18": {"mystiq": 400.1, "eager": 55.0, "lazy": 17.2},
    "20": {"mystiq": 11.2, "eager": 5.4, "lazy": 0.5},
    "21": {"mystiq": 303.5, "eager": 96.1, "lazy": 6.7},
}


@pytest.mark.parametrize("key", FIGURE9_KEYS)
@pytest.mark.parametrize("execution", ["row", "batch"])
@pytest.mark.parametrize("plan", ["lazy", "eager"])
def test_fig9_sprout_plans(benchmark, engine, key, plan, execution):
    query = tpch_query(key).query
    result = run_benchmark(benchmark, engine.evaluate, query, plan=plan, execution=execution)
    benchmark.extra_info["query"] = key
    benchmark.extra_info["plan"] = plan
    benchmark.extra_info["execution"] = execution
    benchmark.extra_info["distinct_tuples"] = result.distinct_tuples
    benchmark.extra_info["answer_rows"] = result.answer_rows
    benchmark.extra_info["paper_seconds_sf1"] = PAPER_SECONDS[key][plan]


@pytest.mark.parametrize("key", FIGURE9_KEYS)
def test_fig9_mystiq_plans(benchmark, mystiq, key):
    query = tpch_query(key).query

    def evaluate():
        try:
            return mystiq.evaluate(query)
        except (NumericalError, UnsafePlanError) as error:  # pragma: no cover
            pytest.skip(f"MystiQ cannot evaluate query {key}: {error}")

    result = run_benchmark(benchmark, evaluate)
    benchmark.extra_info["query"] = key
    benchmark.extra_info["plan"] = "mystiq"
    benchmark.extra_info["distinct_tuples"] = result.distinct_tuples
    benchmark.extra_info["paper_seconds_sf1"] = PAPER_SECONDS[key]["mystiq"]
